//! Per-category HPC collection — step 1 of the paper's evaluator (§4):
//! "monitor different HPC events in parallel during the classification
//! operation of different categories of input images, considering each
//! category individually".

use scnn_data::Dataset;
use scnn_hpc::{CounterGroup, HpcEvent, Measurement, Pmu, PmuError};
use scnn_nn::{Network, NnError};
use scnn_par::{Pool, Threads};
use scnn_rng::SplitMix64;
use scnn_tensor::Tensor;
use scnn_uarch::Probe;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Anything that can classify an image while narrating its architectural
/// events to a probe: a plain [`Network`] or a
/// [`ProtectedModel`](crate::countermeasure::ProtectedModel) wrapping one.
pub trait TracedClassifier {
    /// Classifies `image`, emitting the execution's event stream into
    /// `probe`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] when the image is incompatible with the model.
    fn classify_traced(&mut self, image: &Tensor, probe: &mut dyn Probe) -> Result<usize, NnError>;
}

impl TracedClassifier for Network {
    fn classify_traced(&mut self, image: &Tensor, probe: &mut dyn Probe) -> Result<usize, NnError> {
        Network::classify_traced(self, image, probe)
    }
}

/// Error from a collection campaign.
#[derive(Debug)]
pub enum CollectError {
    /// The PMU failed.
    Pmu(PmuError),
    /// The network rejected an input.
    Nn(scnn_nn::NnError),
    /// A category has no images in the dataset.
    EmptyCategory {
        /// The empty category.
        category: usize,
    },
    /// The dataset is empty.
    EmptyDataset,
}

impl fmt::Display for CollectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectError::Pmu(e) => write!(f, "pmu error: {e}"),
            CollectError::Nn(e) => write!(f, "network error: {e}"),
            CollectError::EmptyCategory { category } => {
                write!(f, "category {category} has no images")
            }
            CollectError::EmptyDataset => write!(f, "dataset is empty"),
        }
    }
}

impl Error for CollectError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CollectError::Pmu(e) => Some(e),
            CollectError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PmuError> for CollectError {
    fn from(e: PmuError) -> Self {
        CollectError::Pmu(e)
    }
}

impl From<scnn_nn::NnError> for CollectError {
    fn from(e: scnn_nn::NnError) -> Self {
        CollectError::Nn(e)
    }
}

/// Parameters of a collection campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectionConfig {
    /// Events to monitor in parallel (one group; subject to the PMU's
    /// hardware-counter budget).
    pub events: Vec<HpcEvent>,
    /// Measurements per category. Images of the category are cycled when
    /// fewer are available.
    pub samples_per_category: usize,
    /// Hardware-counter budget for the group.
    pub hw_counters: usize,
    /// Worker threads for [`collect_campaign`]: one category campaign per
    /// worker. Does not affect the measured values — see the determinism
    /// contract on [`collect_campaign`].
    pub threads: Threads,
}

impl Default for CollectionConfig {
    fn default() -> Self {
        CollectionConfig {
            // The two events the paper's Tables 1–2 analyse.
            events: vec![HpcEvent::CacheMisses, HpcEvent::Branches],
            samples_per_category: 100,
            hw_counters: CounterGroup::DEFAULT_HW_COUNTERS,
            threads: Threads::Auto,
        }
    }
}

/// The HPC observations of one input category: per event, one value per
/// measured classification, index-aligned across events (reading `i` of
/// every event came from the same classification).
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryObservations {
    /// The category (re-mapped label).
    pub category: usize,
    /// Event → measurement series.
    pub per_event: BTreeMap<HpcEvent, Vec<f64>>,
    /// Predicted class of each measured classification (lets analyses
    /// correlate leakage with model output).
    pub predictions: Vec<usize>,
}

impl CategoryObservations {
    /// The series of one event, if measured.
    pub fn series(&self, event: HpcEvent) -> Option<&[f64]> {
        self.per_event.get(&event).map(Vec::as_slice)
    }

    /// Number of measurements.
    pub fn len(&self) -> usize {
        self.predictions.len()
    }

    /// True when no measurements were taken.
    pub fn is_empty(&self) -> bool {
        self.predictions.is_empty()
    }
}

/// Runs the collection campaign: measures `samples_per_category` traced
/// classifications per category of `dataset` through `pmu`.
///
/// # Errors
///
/// Returns [`CollectError`] when the dataset or a category is empty or a
/// backend call fails.
pub fn collect<P: Pmu>(
    net: &mut dyn TracedClassifier,
    dataset: &Dataset,
    pmu: &mut P,
    config: &CollectionConfig,
) -> Result<Vec<CategoryObservations>, CollectError> {
    if dataset.is_empty() {
        return Err(CollectError::EmptyDataset);
    }
    let group =
        CounterGroup::new(config.events.clone(), config.hw_counters).map_err(PmuError::Group)?;

    let mut out = Vec::with_capacity(dataset.num_classes());
    for category in 0..dataset.num_classes() {
        out.push(collect_category(
            net, dataset, pmu, &group, config, category,
        )?);
    }
    Ok(out)
}

/// Measures one category's campaign: `samples_per_category` traced
/// classifications of that category's images through `pmu`.
///
/// This is the per-category body shared by the sequential [`collect`]
/// loop and the parallel [`collect_campaign`] fan-out.
///
/// # Errors
///
/// Returns [`CollectError`] when the category is empty or a backend call
/// fails.
pub fn collect_category<P: Pmu>(
    net: &mut dyn TracedClassifier,
    dataset: &Dataset,
    pmu: &mut P,
    group: &CounterGroup,
    config: &CollectionConfig,
    category: usize,
) -> Result<CategoryObservations, CollectError> {
    // Observation-only span/counters: measured readings never depend on
    // whether a recorder is installed.
    let _span = scnn_obs::Span::enter_indexed("collect.category", category as u64);
    let images: Vec<_> = dataset.of_class(category).collect();
    if images.is_empty() {
        return Err(CollectError::EmptyCategory { category });
    }
    scnn_obs::counter_add("collect.categories", 1);
    let mut per_event: BTreeMap<HpcEvent, Vec<f64>> = config
        .events
        .iter()
        .map(|&e| (e, Vec::with_capacity(config.samples_per_category)))
        .collect();
    let mut predictions = Vec::with_capacity(config.samples_per_category);

    for i in 0..config.samples_per_category {
        scnn_obs::counter_add("collect.samples", 1);
        let image = images[i % images.len()];
        let mut prediction = 0usize;
        let mut nn_err: Option<scnn_nn::NnError> = None;
        let measurement: Measurement = pmu.measure(group, &mut |probe| match net
            .classify_traced(image, probe)
        {
            Ok(p) => prediction = p,
            Err(e) => nn_err = Some(e),
        })?;
        if let Some(e) = nn_err {
            return Err(e.into());
        }
        for reading in &measurement.readings {
            if let Some(series) = per_event.get_mut(&reading.event) {
                series.push(reading.value() as f64);
            }
        }
        predictions.push(prediction);
    }
    Ok(CategoryObservations {
        category,
        per_event,
        predictions,
    })
}

/// Derives the seed for category `category`'s measurement environment
/// from a campaign-level `base` seed.
///
/// The derivation is a pure function of `(base, category)` — it does not
/// depend on how many categories run concurrently or in what order — so
/// a campaign's readings are identical at every thread count.
pub fn category_seed(base: u64, category: usize) -> u64 {
    SplitMix64::new(base ^ (category as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_value()
}

/// Runs the collection campaign with one worker per category, each on its
/// own classifier and PMU.
///
/// `make_classifier(c)` and `make_pmu(c)` build category `c`'s private
/// measurement environment; deriving any per-category randomness via
/// [`category_seed`] keeps each factory a pure function of the category
/// index. Under that contract the observations are **bit-identical at
/// every thread count** (including `Threads::Count(1)`), because each
/// category's campaign never shares mutable state with another.
///
/// This is the paper's §4 setup taken literally: each input category is
/// monitored "considering each category individually", so the campaigns
/// are independent by construction and the fan-out is free.
///
/// # Errors
///
/// Returns [`CollectError`] when the dataset or a category is empty or a
/// backend call fails. With several failing categories, the error of the
/// lowest-numbered one is reported (matching the sequential loop).
pub fn collect_campaign<C, P, FC, FP>(
    make_classifier: FC,
    dataset: &Dataset,
    make_pmu: FP,
    config: &CollectionConfig,
) -> Result<Vec<CategoryObservations>, CollectError>
where
    C: TracedClassifier + Send,
    P: Pmu + Send,
    FC: Fn(usize) -> C + Sync,
    FP: Fn(usize) -> Result<P, PmuError> + Sync,
{
    let all: Vec<usize> = (0..dataset.num_classes()).collect();
    collect_selected(make_classifier, dataset, make_pmu, config, &all, |_| {})
}

/// Runs [`collect_campaign`]'s fan-out over only the listed `categories`
/// (re-mapped indices into `dataset`), invoking `on_collected` from the
/// worker thread as soon as each category's campaign finishes.
///
/// This is the resume primitive of the cached pipeline: a checkpointing
/// caller passes the categories that are missing from its artifact store
/// and persists each one from the callback, so an interrupted campaign
/// restarts at the last completed category rather than from scratch.
///
/// Each category's measurements are a pure function of `(factories,
/// dataset, config, category)` under [`collect_campaign`]'s contract, so
/// collecting a subset yields bit-identical observations to the
/// corresponding slice of the full campaign, at every thread count. The
/// callback runs concurrently from worker threads and must not influence
/// the measurements.
///
/// # Errors
///
/// Returns [`CollectError`] when the dataset or a listed category is
/// empty or a backend call fails. With several failing categories, the
/// error of the first listed failing one is reported.
pub fn collect_selected<C, P, FC, FP>(
    make_classifier: FC,
    dataset: &Dataset,
    make_pmu: FP,
    config: &CollectionConfig,
    categories: &[usize],
    on_collected: impl Fn(&CategoryObservations) + Sync,
) -> Result<Vec<CategoryObservations>, CollectError>
where
    C: TracedClassifier + Send,
    P: Pmu + Send,
    FC: Fn(usize) -> C + Sync,
    FP: Fn(usize) -> Result<P, PmuError> + Sync,
{
    if dataset.is_empty() {
        return Err(CollectError::EmptyDataset);
    }
    let group =
        CounterGroup::new(config.events.clone(), config.hw_counters).map_err(PmuError::Group)?;

    let _span = scnn_obs::Span::enter("collect.campaign");
    let pool = Pool::new(config.threads);
    let results = pool.par_map(categories.to_vec(), |category| {
        let mut net = make_classifier(category);
        let mut pmu = make_pmu(category)?;
        let obs = collect_category(&mut net, dataset, &mut pmu, &group, config, category)?;
        on_collected(&obs);
        Ok(obs)
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scnn_data::mnist_synth::{generate, MnistSynthConfig};
    use scnn_hpc::{SimPmuConfig, SimulatedPmu};
    use scnn_nn::models;
    use scnn_uarch::{CoreConfig, NoiseConfig};

    fn tiny_setup() -> (Network, Dataset, SimulatedPmu) {
        let ds = generate(
            &MnistSynthConfig {
                per_class: 4,
                side: 10,
                ..MnistSynthConfig::default()
            },
            11,
        )
        .unwrap()
        .select_classes(&[0, 1]);
        let net = models::small_cnn(1, 10, 2, 3);
        let pmu = SimulatedPmu::new(
            SimPmuConfig {
                core: CoreConfig::tiny(),
                noise: NoiseConfig::quiet(),
                ..SimPmuConfig::default()
            },
            5,
        )
        .unwrap();
        (net, ds, pmu)
    }

    #[test]
    fn collects_requested_shape() {
        let (net, ds, mut pmu) = tiny_setup();
        let config = CollectionConfig {
            samples_per_category: 6,
            ..CollectionConfig::default()
        };
        let mut net = net;
        let obs = collect(&mut net, &ds, &mut pmu, &config).unwrap();
        assert_eq!(obs.len(), 2);
        for (c, o) in obs.iter().enumerate() {
            assert_eq!(o.category, c);
            assert_eq!(o.len(), 6);
            assert_eq!(o.series(HpcEvent::CacheMisses).unwrap().len(), 6);
            assert_eq!(o.series(HpcEvent::Branches).unwrap().len(), 6);
            assert!(o.series(HpcEvent::Cycles).is_none());
        }
    }

    #[test]
    fn images_cycle_when_scarce() {
        let (net, ds, mut pmu) = tiny_setup();
        // 4 images per class, 9 samples requested: wraps around.
        let config = CollectionConfig {
            samples_per_category: 9,
            ..CollectionConfig::default()
        };
        let mut net = net;
        let obs = collect(&mut net, &ds, &mut pmu, &config).unwrap();
        assert_eq!(obs[0].len(), 9);
        // Under a quiet PMU, measurement i and i+4 are the same image and
        // must give identical cache-miss counts.
        let series = obs[0].series(HpcEvent::CacheMisses).unwrap();
        assert_eq!(series[0], series[4]);
        assert_eq!(series[1], series[5]);
    }

    #[test]
    fn values_are_classification_scale() {
        let (net, ds, mut pmu) = tiny_setup();
        let config = CollectionConfig {
            events: vec![HpcEvent::Instructions],
            samples_per_category: 2,
            ..CollectionConfig::default()
        };
        let mut net = net;
        let obs = collect(&mut net, &ds, &mut pmu, &config).unwrap();
        for o in &obs {
            for &v in o.series(HpcEvent::Instructions).unwrap() {
                assert!(
                    v > 1_000.0,
                    "a CNN inference retires many instructions: {v}"
                );
            }
        }
    }

    #[test]
    fn campaign_bit_identical_across_thread_counts() {
        let run = |threads: Threads| {
            let (net, ds, _) = tiny_setup();
            let config = CollectionConfig {
                samples_per_category: 5,
                threads,
                ..CollectionConfig::default()
            };
            collect_campaign(
                |_| net.clone(),
                &ds,
                |c| {
                    SimulatedPmu::new(
                        SimPmuConfig {
                            core: CoreConfig::tiny(),
                            ..SimPmuConfig::default()
                        },
                        category_seed(5, c),
                    )
                },
                &config,
            )
            .unwrap()
        };
        let seq = run(Threads::Count(1));
        assert_eq!(seq.len(), 2);
        assert_eq!(seq, run(Threads::Count(2)));
        assert_eq!(seq, run(Threads::Count(4)));
    }

    #[test]
    fn selected_subset_matches_full_campaign_slice() {
        use std::sync::Mutex;
        let (net, ds, _) = tiny_setup();
        let config = CollectionConfig {
            samples_per_category: 4,
            threads: Threads::Count(2),
            ..CollectionConfig::default()
        };
        let make_pmu = |c: usize| {
            SimulatedPmu::new(
                SimPmuConfig {
                    core: CoreConfig::tiny(),
                    ..SimPmuConfig::default()
                },
                category_seed(7, c),
            )
        };
        let full = collect_campaign(|_| net.clone(), &ds, make_pmu, &config).unwrap();

        let seen = Mutex::new(Vec::new());
        let only_one = collect_selected(
            |_| net.clone(),
            &ds,
            make_pmu,
            &config,
            &[1],
            |obs: &CategoryObservations| seen.lock().unwrap().push(obs.category),
        )
        .unwrap();
        assert_eq!(only_one.len(), 1);
        assert_eq!(only_one[0], full[1]);
        assert_eq!(*seen.lock().unwrap(), vec![1]);
    }

    #[test]
    fn campaign_threads_one_matches_manual_sequential_loop() {
        let (net, ds, _) = tiny_setup();
        let config = CollectionConfig {
            samples_per_category: 4,
            threads: Threads::Count(1),
            ..CollectionConfig::default()
        };
        let make_pmu = |c: usize| {
            SimulatedPmu::new(
                SimPmuConfig {
                    core: CoreConfig::tiny(),
                    ..SimPmuConfig::default()
                },
                category_seed(9, c),
            )
        };
        let campaign = collect_campaign(|_| net.clone(), &ds, make_pmu, &config).unwrap();

        let group = CounterGroup::new(config.events.clone(), config.hw_counters).unwrap();
        let mut manual = Vec::new();
        for c in 0..ds.num_classes() {
            let mut n = net.clone();
            let mut pmu = make_pmu(c).unwrap();
            manual.push(collect_category(&mut n, &ds, &mut pmu, &group, &config, c).unwrap());
        }
        assert_eq!(campaign, manual);
    }

    #[test]
    fn category_seed_is_pure_and_spreads() {
        assert_eq!(category_seed(42, 3), category_seed(42, 3));
        assert_ne!(category_seed(42, 0), category_seed(42, 1));
        assert_ne!(category_seed(42, 0), category_seed(43, 0));
    }

    #[test]
    fn campaign_reports_lowest_failing_category() {
        let (net, ds, _) = tiny_setup();
        // Classes {0,1} exist; a 3-class dataset leaves category 2 empty.
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for (img, l) in ds.iter() {
            images.push(img.clone());
            labels.push(l);
        }
        let ds3 = Dataset::new(images, labels, 3).unwrap();
        let err = collect_campaign(
            |_| net.clone(),
            &ds3,
            |c| {
                SimulatedPmu::new(
                    SimPmuConfig {
                        core: CoreConfig::tiny(),
                        ..SimPmuConfig::default()
                    },
                    category_seed(1, c),
                )
            },
            &CollectionConfig {
                threads: Threads::Count(3),
                ..CollectionConfig::default()
            },
        );
        assert!(matches!(
            err,
            Err(CollectError::EmptyCategory { category: 2 })
        ));
    }

    #[test]
    fn empty_dataset_errors() {
        let (net, _, mut pmu) = tiny_setup();
        let empty = Dataset::new(vec![], vec![], 2).unwrap();
        let mut net = net;
        assert!(matches!(
            collect(&mut net, &empty, &mut pmu, &CollectionConfig::default()),
            Err(CollectError::EmptyDataset)
        ));
    }

    #[test]
    fn missing_category_errors() {
        let (net, ds, mut pmu) = tiny_setup();
        // Classes {0,1} exist; construct a 3-class dataset reusing them.
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for (img, l) in ds.iter() {
            images.push(img.clone());
            labels.push(l);
        }
        let ds3 = Dataset::new(images, labels, 3).unwrap();
        let mut net = net;
        assert!(matches!(
            collect(&mut net, &ds3, &mut pmu, &CollectionConfig::default()),
            Err(CollectError::EmptyCategory { category: 2 })
        ));
    }
}
