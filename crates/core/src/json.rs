//! Machine-readable report output: a minimal, dependency-free JSON
//! writer.
//!
//! The workspace builds hermetically, so instead of a serialization
//! framework this module hand-rolls exactly the JSON the tooling needs:
//! [`LeakageReport`] (the evaluator's full verdict), the per-category
//! [`Summary`] statistics inside it, and raw [`CounterReading`]s. The
//! `repro` binary uses it to emit results that downstream scripts can
//! parse without scraping the text tables.
//!
//! Numbers follow the JSON grammar strictly: non-finite floats (a t-test
//! on degenerate data can produce them) are emitted as `null` rather than
//! the invalid tokens `NaN`/`inf`.

use crate::evaluator::{Alarm, EvaluatorConfig, EventLeakage, LeakageReport};
use scnn_hpc::{CounterReading, HpcEvent};
use scnn_stats::{DecisionRule, PairResult, PairwiseLeakage, Summary, TTestKind, TTestResult};

/// Types that can render themselves as a JSON value.
pub trait ToJson {
    /// Appends this value's JSON encoding to `out`.
    fn write_json(&self, out: &mut String);

    /// The value as a standalone JSON document.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

/// Appends a JSON string literal with the mandatory escapes.
fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An object under construction; fields are comma-separated as added.
struct ObjectWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> ObjectWriter<'a> {
    fn new(out: &'a mut String) -> Self {
        out.push('{');
        ObjectWriter { out, first: true }
    }

    fn field<T: ToJson + ?Sized>(&mut self, name: &str, value: &T) -> &mut Self {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        write_str(self.out, name);
        self.out.push(':');
        value.write_json(self.out);
        self
    }

    fn finish(self) {
        self.out.push('}');
    }
}

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for u64 {
    fn write_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl ToJson for usize {
    fn write_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            // `{:?}` round-trips f64 exactly and always includes enough
            // digits; its output is valid JSON for finite values.
            out.push_str(&format!("{self:?}"));
        } else {
            out.push_str("null");
        }
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        write_str(out, self);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_str(out, self);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl ToJson for HpcEvent {
    fn write_json(&self, out: &mut String) {
        write_str(out, self.perf_name());
    }
}

impl ToJson for Summary {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("count", &self.count())
            .field("mean", &self.mean())
            .field("std", &self.sample_std())
            .field("min", &self.min())
            .field("max", &self.max());
        obj.finish();
    }
}

impl ToJson for TTestKind {
    fn write_json(&self, out: &mut String) {
        write_str(
            out,
            match self {
                TTestKind::Welch => "welch",
                TTestKind::Pooled => "pooled",
            },
        );
    }
}

impl ToJson for TTestResult {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("t", &self.t)
            .field("df", &self.df)
            .field("p", &self.p)
            .field("mean1", &self.mean1)
            .field("mean2", &self.mean2)
            .field("kind", &self.kind);
        obj.finish();
    }
}

impl ToJson for DecisionRule {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        match *self {
            DecisionRule::PValue { alpha } => {
                obj.field("rule", "p-value").field("alpha", &alpha);
            }
            DecisionRule::TThreshold { threshold } => {
                obj.field("rule", "t-threshold")
                    .field("threshold", &threshold);
            }
        }
        obj.finish();
    }
}

impl ToJson for PairResult {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("i", &self.i)
            .field("j", &self.j)
            .field("test", &self.test)
            .field("effect_size", &self.effect_size)
            .field("distinguishable", &self.distinguishable);
        obj.finish();
    }
}

impl ToJson for PairwiseLeakage {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("categories", &self.categories)
            .field("rule", &self.rule)
            .field("pairs", &self.pairs);
        obj.finish();
    }
}

impl ToJson for EventLeakage {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("event", &self.event)
            .field("leaks", &self.leaks())
            .field("summaries", &self.summaries)
            .field("pairwise", &self.pairwise)
            .field("holm", &self.holm)
            .field("second_order", &self.second_order);
        obj.finish();
    }
}

impl ToJson for Alarm {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("raised", &self.raised())
            .field("triggering_events", self.triggering_events());
        obj.finish();
    }
}

impl ToJson for EvaluatorConfig {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("kind", &self.kind)
            .field("rule", &self.rule)
            .field("holm_alpha", &self.holm_alpha)
            .field("second_order", &self.second_order);
        obj.finish();
    }
}

impl ToJson for LeakageReport {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("categories", &self.categories)
            .field("config", &self.config)
            .field("alarm", &self.alarm())
            .field("per_event", &self.per_event);
        obj.finish();
    }
}

impl ToJson for CounterReading {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("event", &self.event)
            .field("raw", &self.raw)
            .field("time_enabled", &self.time_enabled)
            .field("time_running", &self.time_running)
            .field("scaled", &self.value());
        obj.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::CategoryObservations;
    use crate::evaluator::Evaluator;
    use std::collections::BTreeMap;

    fn report() -> LeakageReport {
        let obs: Vec<CategoryObservations> = (0..2)
            .map(|c| {
                let mut per_event = BTreeMap::new();
                per_event.insert(
                    HpcEvent::CacheMisses,
                    (0..30).map(|i| (c * 50) as f64 + (i % 5) as f64).collect(),
                );
                CategoryObservations {
                    category: c,
                    per_event,
                    predictions: vec![c; 30],
                }
            })
            .collect();
        Evaluator::default().evaluate(&obs).unwrap()
    }

    /// A structural check that the output is valid JSON: balanced
    /// delimiters outside strings, no trailing garbage.
    fn assert_balanced(json: &str) {
        let mut depth = 0i32;
        let mut in_str = false;
        let mut escape = false;
        for c in json.chars() {
            if in_str {
                if escape {
                    escape = false;
                } else if c == '\\' {
                    escape = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced close in {json}");
        }
        assert_eq!(depth, 0, "unbalanced JSON: {json}");
        assert!(!in_str, "unterminated string in {json}");
    }

    #[test]
    fn report_serializes_with_all_sections() {
        let json = report().to_json();
        assert_balanced(&json);
        for key in [
            "\"categories\":2",
            "\"alarm\"",
            "\"per_event\"",
            "\"cache-misses\"",
            "\"pairs\"",
            "\"distinguishable\":true",
            "\"raised\":true",
            "\"rule\":\"p-value\"",
            "\"kind\":\"welch\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
    }

    #[test]
    fn optional_sections_are_null_when_absent() {
        let json = report().to_json();
        assert!(json.contains("\"holm\":null"));
        assert!(json.contains("\"second_order\":null"));
        assert!(json.contains("\"holm_alpha\":null"));
    }

    #[test]
    fn counter_reading_serializes() {
        let r = CounterReading {
            event: HpcEvent::Branches,
            raw: 500,
            time_enabled: 100,
            time_running: 50,
        };
        let json = r.to_json();
        assert_balanced(&json);
        assert!(json.contains("\"event\":\"branches\""));
        assert!(json.contains("\"raw\":500"));
        assert!(
            json.contains("\"scaled\":1000"),
            "multiplexing extrapolated: {json}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        "a\"b\\c\nd\u{1}".write_json(&mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(f64::INFINITY.to_json(), "null");
        assert_eq!(1.5f64.to_json(), "1.5");
    }

    #[test]
    fn floats_round_trip_precision() {
        let x = 0.1f64 + 0.2f64;
        assert_eq!(x.to_json().parse::<f64>().unwrap(), x);
    }
}
