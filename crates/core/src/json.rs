//! Machine-readable report output: a minimal, dependency-free JSON
//! writer and reader.
//!
//! The workspace builds hermetically, so instead of a serialization
//! framework this module hand-rolls exactly the JSON the tooling needs:
//! [`LeakageReport`] (the evaluator's full verdict), the per-category
//! [`Summary`] statistics inside it, raw [`CounterReading`]s, and the
//! observability layer's [`TelemetrySnapshot`]. The `repro` binary uses
//! it to emit results that downstream scripts can parse without scraping
//! the text tables, and [`parse`] reads any JSON document back into a
//! [`Value`] tree (used by `telemetry_lint` and the golden tests).
//!
//! Numbers follow the JSON grammar strictly: non-finite floats (a t-test
//! on degenerate data can produce them) are emitted as `null` rather than
//! the invalid tokens `NaN`/`inf`.

use crate::evaluator::{Alarm, EvaluatorConfig, EventLeakage, LeakageReport};
use scnn_hpc::{CounterReading, HpcEvent};
use scnn_obs::{CounterSnapshot, HistogramSnapshot, SeriesSnapshot, SpanRecord, TelemetrySnapshot};
use scnn_stats::{DecisionRule, PairResult, PairwiseLeakage, Summary, TTestKind, TTestResult};
use std::fmt;

/// Types that can render themselves as a JSON value.
pub trait ToJson {
    /// Appends this value's JSON encoding to `out`.
    fn write_json(&self, out: &mut String);

    /// The value as a standalone JSON document.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

/// Appends a JSON string literal with the mandatory escapes.
pub(crate) fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An object under construction; fields are comma-separated as added.
pub(crate) struct ObjectWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> ObjectWriter<'a> {
    pub(crate) fn new(out: &'a mut String) -> Self {
        out.push('{');
        ObjectWriter { out, first: true }
    }

    pub(crate) fn field<T: ToJson + ?Sized>(&mut self, name: &str, value: &T) -> &mut Self {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        write_str(self.out, name);
        self.out.push(':');
        value.write_json(self.out);
        self
    }

    pub(crate) fn finish(self) {
        self.out.push('}');
    }
}

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for u64 {
    fn write_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl ToJson for usize {
    fn write_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            // `{:?}` round-trips f64 exactly and always includes enough
            // digits; its output is valid JSON for finite values.
            out.push_str(&format!("{self:?}"));
        } else {
            out.push_str("null");
        }
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        write_str(out, self);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_str(out, self);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl ToJson for HpcEvent {
    fn write_json(&self, out: &mut String) {
        write_str(out, self.perf_name());
    }
}

impl ToJson for Summary {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("count", &self.count())
            .field("mean", &self.mean())
            .field("std", &self.sample_std())
            .field("min", &self.min())
            .field("max", &self.max());
        obj.finish();
    }
}

impl ToJson for TTestKind {
    fn write_json(&self, out: &mut String) {
        write_str(
            out,
            match self {
                TTestKind::Welch => "welch",
                TTestKind::Pooled => "pooled",
            },
        );
    }
}

impl ToJson for TTestResult {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("t", &self.t)
            .field("df", &self.df)
            .field("p", &self.p)
            .field("mean1", &self.mean1)
            .field("mean2", &self.mean2)
            .field("kind", &self.kind);
        obj.finish();
    }
}

impl ToJson for DecisionRule {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        match *self {
            DecisionRule::PValue { alpha } => {
                obj.field("rule", "p-value").field("alpha", &alpha);
            }
            DecisionRule::TThreshold { threshold } => {
                obj.field("rule", "t-threshold")
                    .field("threshold", &threshold);
            }
        }
        obj.finish();
    }
}

impl ToJson for PairResult {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("i", &self.i)
            .field("j", &self.j)
            .field("test", &self.test)
            .field("effect_size", &self.effect_size)
            .field("distinguishable", &self.distinguishable);
        obj.finish();
    }
}

impl ToJson for PairwiseLeakage {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("categories", &self.categories)
            .field("rule", &self.rule)
            .field("pairs", &self.pairs);
        obj.finish();
    }
}

impl ToJson for EventLeakage {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("event", &self.event)
            .field("leaks", &self.leaks())
            .field("summaries", &self.summaries)
            .field("pairwise", &self.pairwise)
            .field("holm", &self.holm)
            .field("second_order", &self.second_order);
        obj.finish();
    }
}

impl ToJson for Alarm {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("raised", &self.raised())
            .field("triggering_events", self.triggering_events());
        obj.finish();
    }
}

impl ToJson for EvaluatorConfig {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("kind", &self.kind)
            .field("rule", &self.rule)
            .field("holm_alpha", &self.holm_alpha)
            .field("second_order", &self.second_order);
        obj.finish();
    }
}

impl ToJson for LeakageReport {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("categories", &self.categories)
            .field("config", &self.config)
            .field("alarm", &self.alarm())
            .field("per_event", &self.per_event);
        obj.finish();
    }
}

impl ToJson for CounterReading {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("event", &self.event)
            .field("raw", &self.raw)
            .field("time_enabled", &self.time_enabled)
            .field("time_running", &self.time_running)
            .field("scaled", &self.value());
        obj.finish();
    }
}

impl ToJson for u32 {
    fn write_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

// ---------------------------------------------------------------------
// Experiment-config serialization: the canonical strings the artifact
// cache digests into keys (crate::artifact). Field sets deliberately
// exclude anything outside the determinism boundary — `threads` settings
// never appear, because results are bit-identical across thread counts
// (DESIGN.md §9) and must not fragment the cache.
// ---------------------------------------------------------------------

impl ToJson for crate::pipeline::DatasetKind {
    fn write_json(&self, out: &mut String) {
        write_str(
            out,
            match self {
                crate::pipeline::DatasetKind::Mnist => "mnist",
                crate::pipeline::DatasetKind::Cifar10 => "cifar10",
            },
        );
    }
}

impl ToJson for crate::pipeline::ModelScale {
    fn write_json(&self, out: &mut String) {
        write_str(
            out,
            match self {
                crate::pipeline::ModelScale::Tiny => "tiny",
                crate::pipeline::ModelScale::Paper => "paper",
            },
        );
    }
}

impl ToJson for crate::pipeline::Architecture {
    fn write_json(&self, out: &mut String) {
        write_str(
            out,
            match self {
                crate::pipeline::Architecture::Cnn => "cnn",
                crate::pipeline::Architecture::Mlp => "mlp",
            },
        );
    }
}

impl ToJson for crate::countermeasure::Countermeasure {
    fn write_json(&self, out: &mut String) {
        use crate::countermeasure::Countermeasure;
        let mut obj = ObjectWriter::new(out);
        match *self {
            Countermeasure::ConstantTime => {
                obj.field("kind", "constant-time");
            }
            Countermeasure::NoiseInjection { dummy_events } => {
                obj.field("kind", "noise-injection")
                    .field("dummy_events", &dummy_events);
            }
            Countermeasure::Combined { dummy_events } => {
                obj.field("kind", "combined")
                    .field("dummy_events", &dummy_events);
            }
            Countermeasure::Shuffle => {
                obj.field("kind", "shuffle");
            }
            Countermeasure::DecoyInference { decoys } => {
                obj.field("kind", "decoy-inference")
                    .field("decoys", &decoys);
            }
            Countermeasure::ObliviousShape => {
                obj.field("kind", "oblivious-shape");
            }
            Countermeasure::CalibratedNoise {
                target_t,
                dummy_events,
            } => {
                obj.field("kind", "calibrated-noise")
                    .field("target_t", &target_t)
                    .field("dummy_events", &dummy_events);
            }
        }
        obj.finish();
    }
}

impl ToJson for scnn_nn::train::TrainConfig {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("epochs", &self.epochs)
            .field("base_lr", &self.schedule.base_lr)
            .field("gamma", &self.schedule.gamma)
            .field("every", &self.schedule.every)
            .field("momentum", &self.momentum)
            .field("weight_decay", &self.weight_decay)
            .field("seed", &self.seed)
            .field("batch_size", &self.batch_size);
        obj.finish();
    }
}

impl ToJson for crate::collect::CollectionConfig {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("events", &self.events)
            .field("samples_per_category", &self.samples_per_category)
            .field("hw_counters", &self.hw_counters);
        obj.finish();
    }
}

// ---------------------------------------------------------------------
// Telemetry (scnn-obs) serialization. The snapshot shape is versioned;
// tests/telemetry.rs pins the stable keys.
// ---------------------------------------------------------------------

impl ToJson for SpanRecord {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("id", &self.id)
            .field("parent", &self.parent)
            .field("name", self.name)
            .field("index", &self.index)
            .field("thread", &self.thread)
            .field("depth", &self.depth)
            .field("start_ns", &self.start_ns)
            .field("duration_ns", &self.duration_ns);
        obj.finish();
    }
}

impl ToJson for CounterSnapshot {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("name", &self.name).field("value", &self.value);
        obj.finish();
    }
}

/// A `(f64, u64)` histogram bucket as `[upper_bound, count]`.
struct Bucket(f64, u64);

impl ToJson for Bucket {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        self.0.write_json(out);
        out.push(',');
        self.1.write_json(out);
        out.push(']');
    }
}

impl ToJson for HistogramSnapshot {
    fn write_json(&self, out: &mut String) {
        let buckets: Vec<Bucket> = self.buckets.iter().map(|&(le, c)| Bucket(le, c)).collect();
        let mut obj = ObjectWriter::new(out);
        obj.field("name", &self.name)
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("buckets", &buckets);
        obj.finish();
    }
}

/// An `(x, y)` series point as `[x, y]`.
struct Point(f64, f64);

impl ToJson for Point {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        self.0.write_json(out);
        out.push(',');
        self.1.write_json(out);
        out.push(']');
    }
}

impl ToJson for SeriesSnapshot {
    fn write_json(&self, out: &mut String) {
        let points: Vec<Point> = self.points.iter().map(|&(x, y)| Point(x, y)).collect();
        let mut obj = ObjectWriter::new(out);
        obj.field("name", &self.name).field("points", &points);
        obj.finish();
    }
}

impl ToJson for TelemetrySnapshot {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("version", &self.version)
            .field("spans", &self.spans)
            .field("counters", &self.counters)
            .field("histograms", &self.histograms)
            .field("series", &self.series);
        obj.finish();
    }
}

// ---------------------------------------------------------------------
// Reading JSON back: a strict recursive-descent parser into `Value`.
// ---------------------------------------------------------------------

/// A parsed JSON value.
///
/// Objects preserve key order (they are association lists, not maps);
/// duplicate keys are kept as-is, with [`Value::get`] returning the
/// first.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, like JavaScript).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True when this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Error from [`parse`]: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonParseError {
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Parses a complete JSON document (one value plus optional surrounding
/// whitespace).
///
/// # Errors
///
/// Returns [`JsonParseError`] on any grammar violation, including
/// trailing garbage after the top-level value.
pub fn parse(input: &str) -> Result<Value, JsonParseError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Containers deeper than this are rejected (guards the recursive
/// parser's stack; real telemetry nests a handful of levels).
const MAX_DEPTH: usize = 128;

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), JsonParseError> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected {keyword:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.expect_keyword("null").map(|()| Value::Null),
            Some(b't') => self.expect_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonParseError> {
        self.enter_container()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonParseError> {
        self.enter_container()?;
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn enter_container(&mut self) -> Result<(), JsonParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error("nesting deeper than 128 levels"));
        }
        Ok(())
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.error("unescaped control character in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let c = std::str::from_utf8(rest)
                        .ok()
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.error("invalid UTF-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the `XXXX` of a `\uXXXX` escape (the leading `\u` is
    /// consumed), combining UTF-16 surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonParseError> {
        let high = self.hex4()?;
        if (0xD800..0xDC00).contains(&high) {
            // High surrogate: a low surrogate escape must follow.
            self.expect_keyword("\\u")
                .map_err(|_| self.error("high surrogate not followed by \\u escape"))?;
            let low = self.hex4()?;
            if !(0xDC00..0xE000).contains(&low) {
                return Err(self.error("high surrogate followed by non-low surrogate"));
            }
            let code = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
            char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"))
        } else {
            char::from_u32(high).ok_or_else(|| self.error("lone low surrogate"))
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let code = u32::from_str_radix(digits, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digit expected after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digit expected in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number chars are ASCII by construction");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::CategoryObservations;
    use crate::evaluator::Evaluator;
    use std::collections::BTreeMap;

    fn report() -> LeakageReport {
        let obs: Vec<CategoryObservations> = (0..2)
            .map(|c| {
                let mut per_event = BTreeMap::new();
                per_event.insert(
                    HpcEvent::CacheMisses,
                    (0..30).map(|i| (c * 50) as f64 + (i % 5) as f64).collect(),
                );
                CategoryObservations {
                    category: c,
                    per_event,
                    predictions: vec![c; 30],
                }
            })
            .collect();
        Evaluator::default().evaluate(&obs).unwrap()
    }

    /// A structural check that the output is valid JSON: balanced
    /// delimiters outside strings, no trailing garbage.
    fn assert_balanced(json: &str) {
        let mut depth = 0i32;
        let mut in_str = false;
        let mut escape = false;
        for c in json.chars() {
            if in_str {
                if escape {
                    escape = false;
                } else if c == '\\' {
                    escape = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced close in {json}");
        }
        assert_eq!(depth, 0, "unbalanced JSON: {json}");
        assert!(!in_str, "unterminated string in {json}");
    }

    #[test]
    fn report_serializes_with_all_sections() {
        let json = report().to_json();
        assert_balanced(&json);
        for key in [
            "\"categories\":2",
            "\"alarm\"",
            "\"per_event\"",
            "\"cache-misses\"",
            "\"pairs\"",
            "\"distinguishable\":true",
            "\"raised\":true",
            "\"rule\":\"p-value\"",
            "\"kind\":\"welch\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
    }

    #[test]
    fn optional_sections_are_null_when_absent() {
        let json = report().to_json();
        assert!(json.contains("\"holm\":null"));
        assert!(json.contains("\"second_order\":null"));
        assert!(json.contains("\"holm_alpha\":null"));
    }

    #[test]
    fn counter_reading_serializes() {
        let r = CounterReading {
            event: HpcEvent::Branches,
            raw: 500,
            time_enabled: 100,
            time_running: 50,
        };
        let json = r.to_json();
        assert_balanced(&json);
        assert!(json.contains("\"event\":\"branches\""));
        assert!(json.contains("\"raw\":500"));
        assert!(
            json.contains("\"scaled\":1000"),
            "multiplexing extrapolated: {json}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        "a\"b\\c\nd\u{1}".write_json(&mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(f64::INFINITY.to_json(), "null");
        assert_eq!(1.5f64.to_json(), "1.5");
    }

    #[test]
    fn floats_round_trip_precision() {
        let x = 0.1f64 + 0.2f64;
        assert_eq!(x.to_json().parse::<f64>().unwrap(), x);
    }

    #[test]
    fn config_json_is_canonical_and_thread_free() {
        use crate::countermeasure::Countermeasure;
        use crate::pipeline::{Architecture, DatasetKind, ModelScale};

        assert_eq!(DatasetKind::Mnist.to_json(), "\"mnist\"");
        assert_eq!(ModelScale::Paper.to_json(), "\"paper\"");
        assert_eq!(Architecture::Mlp.to_json(), "\"mlp\"");
        assert_eq!(
            Countermeasure::NoiseInjection { dummy_events: 9 }.to_json(),
            "{\"kind\":\"noise-injection\",\"dummy_events\":9}"
        );

        // The cache-key boundary: thread settings are not part of the
        // canonical config (results are bit-identical across counts).
        let train = scnn_nn::train::TrainConfig::default().to_json();
        assert_balanced(&train);
        assert!(!train.contains("thread"), "{train}");
        assert!(train.contains("\"epochs\":5"));
        let collect = crate::collect::CollectionConfig::default().to_json();
        assert_balanced(&collect);
        assert!(!collect.contains("thread"), "{collect}");
        assert!(collect.contains("\"cache-misses\""));

        // Identical configs serialize to byte-identical strings.
        assert_eq!(train, scnn_nn::train::TrainConfig::default().to_json());
    }

    #[test]
    fn parser_accepts_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(
            parse("\"hi\\n\\u0041\"").unwrap(),
            Value::String("hi\nA".into())
        );
    }

    #[test]
    fn parser_handles_surrogate_pairs() {
        assert_eq!(
            parse("\"\\ud83e\\udd80\"").unwrap(),
            Value::String("\u{1F980}".into())
        );
    }

    #[test]
    fn parser_preserves_object_order_and_nesting() {
        let v = parse(r#"{"b":[1,2,{"c":null}],"a":{"x":true}}"#).unwrap();
        let b = v.get("b").unwrap().as_array().unwrap();
        assert_eq!(b[0].as_f64(), Some(1.0));
        assert!(b[2].get("c").unwrap().is_null());
        assert_eq!(v.get("a").unwrap().get("x").unwrap().as_bool(), Some(true));
        match &v {
            Value::Object(members) => assert_eq!(members[0].0, "b"),
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "01",
            "1.",
            "1e",
            "\"\\q\"",
            "tru",
            "[1]x",
            "\"\u{1}\"",
        ] {
            let err = parse(bad).unwrap_err();
            assert!(!err.message.is_empty(), "{bad:?} should fail");
        }
        // Error carries a usable offset.
        assert_eq!(parse("[1 2]").unwrap_err().offset, 3);
    }

    #[test]
    fn parser_enforces_depth_limit() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).unwrap_err().message.contains("nesting"));
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn leakage_report_json_parses_back() {
        let report = report();
        let v = parse(&report.to_json()).expect("writer output must parse");
        assert_eq!(
            v.get("categories").and_then(Value::as_f64),
            Some(report.categories as f64)
        );
        let per_event = v.get("per_event").unwrap().as_array().unwrap();
        assert_eq!(per_event.len(), report.per_event.len());
    }

    #[test]
    fn telemetry_snapshot_round_trips() {
        let recorder = std::sync::Arc::new(scnn_obs::Recorder::new());
        scnn_obs::install(recorder.clone());
        {
            let _outer = scnn_obs::Span::enter("t.outer");
            let _inner = scnn_obs::Span::enter_indexed("t.inner", 3);
            scnn_obs::counter_add("t.count", 2);
            scnn_obs::histogram_record("t.hist", 4.0);
            scnn_obs::series_push("t.series", 0.0, 0.25);
        }
        scnn_obs::uninstall();
        let snapshot = recorder.snapshot();
        let v = parse(&snapshot.to_json()).expect("telemetry JSON must parse");
        assert_eq!(v.get("version").and_then(Value::as_f64), Some(1.0));
        let spans = v.get("spans").unwrap().as_array().unwrap();
        let inner = spans
            .iter()
            .find(|s| s.get("name").and_then(Value::as_str) == Some("t.inner"))
            .expect("t.inner span present");
        assert_eq!(inner.get("index").and_then(Value::as_f64), Some(3.0));
        assert!(inner.get("parent").unwrap().as_f64().is_some());
        let counters = v.get("counters").unwrap().as_array().unwrap();
        assert!(counters.iter().any(|c| {
            c.get("name").and_then(Value::as_str) == Some("t.count")
                && c.get("value").and_then(Value::as_f64) == Some(2.0)
        }));
        let hists = v.get("histograms").unwrap().as_array().unwrap();
        let hist = hists
            .iter()
            .find(|h| h.get("name").and_then(Value::as_str) == Some("t.hist"))
            .unwrap();
        let buckets = hist.get("buckets").unwrap().as_array().unwrap();
        assert!(!buckets.is_empty());
        let series = v.get("series").unwrap().as_array().unwrap();
        let s = series
            .iter()
            .find(|s| s.get("name").and_then(Value::as_str) == Some("t.series"))
            .unwrap();
        assert_eq!(
            s.get("points").unwrap().as_array().unwrap()[0]
                .as_array()
                .unwrap()[1]
                .as_f64(),
            Some(0.25)
        );
    }
}
