//! Leakage-vs-overhead Pareto frontier over the countermeasure suite.
//!
//! The paper stops at the observation that constant-footprint execution
//! silences the alarm; the natural engineering question is *at what
//! cost, and compared to what?* This module runs every
//! [`Countermeasure`] arm (plus the unprotected baseline) through
//! **both** adversaries — the pairwise-t-test evaluator (input
//! recovery) and the architecture [`Extractor`](crate::extract) — and
//! prices each arm with simulated cycle counts, then reports the
//! Pareto-dominant set on the (leakage, overhead) plane.
//!
//! Axes:
//!
//! - **leakage** ∈ [0, 1] — the mean of the evaluator's
//!   distinguishable-cell ratio and the extraction adversary's overall
//!   recovery score. Both adversaries matter: shuffling scrambles the
//!   *address* stream but leaves event *counts* intact, so it defeats
//!   neither counter-based adversary here — the frontier makes that
//!   honest and visible instead of letting "we added a countermeasure"
//!   pass for "we are safe".
//! - **overhead** — mean simulated [`Cycles`](HpcEvent::Cycles) per
//!   traced inference, relative to the baseline arm.
//!
//! The calibrated-noise arm replaces the ablation's hard-coded
//! dummy-event budget with a measured one: its volume is doubled until
//! the evaluator's max |t| falls below a target (see
//! [`calibrate_noise`]), so the reported overhead is the *price of the
//! threshold*, not of a guess.
//!
//! Determinism mirrors the sweep: arms are ordered coarse-grain
//! [`Pool`] jobs with single-threaded interiors, and every random
//! stream is seeded from the countermeasure's canonical JSON
//! ([`artifact::cm_seed_tag`]), so output is byte-identical at every
//! thread count and cold-vs-warm cache state.

use crate::artifact;
use crate::collect::category_seed;
use crate::countermeasure::Countermeasure;
use crate::error::Error;
use crate::evaluator::LeakageReport;
use crate::extract;
use crate::json::{ObjectWriter, ToJson};
use crate::pipeline::{CacheUsage, Experiment, ExperimentConfig};
use scnn_cache::ArtifactCache;
use scnn_data::Dataset;
use scnn_hpc::{CounterGroup, HpcEvent, Pmu, SimulatedPmu};
use scnn_nn::Network;
use scnn_par::{Pool, Threads};

/// Tunable knobs of the frontier campaign — the CLI's `--dummy-events`,
/// `--decoys` and `--target-t` flags land here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierOptions {
    /// Mean dummy events of the fixed-budget noise arm.
    pub dummy_events: u64,
    /// Decoy classifications per real inference on the decoy arm.
    pub decoys: u64,
    /// Max-|t| target the calibrated-noise arm is driven toward.
    pub target_t: f64,
    /// Fraction of each trace corpus used for extraction profiling.
    pub profile_fraction: f64,
}

impl Default for FrontierOptions {
    fn default() -> Self {
        FrontierOptions {
            dummy_events: 20_000,
            decoys: 3,
            // Just below the evaluator's |t| threshold: calibration stops
            // exactly when no pair is distinguishable any more.
            target_t: 1.5,
            profile_fraction: 0.6,
        }
    }
}

/// Evaluator-side leak statistics folded out of a [`LeakageReport`]:
/// `(alarm, distinguishable cells, total cells, max |t|)`.
///
/// The frontier's alarm tests 48 cells at once (8 events × 6 pairs),
/// so raw per-cell verdicts at 95% confidence would false-alarm on
/// ~2.4 quiet cells per arm. When the report carries Holm-corrected
/// verdicts (the frontier always requests them) those are used for the
/// alarm and the cell count, keeping the family-wise error controlled;
/// max |t| stays the raw statistic either way.
fn leak_stats(report: &LeakageReport) -> (bool, usize, usize, f64) {
    let mut distinguishable = 0;
    let mut total = 0;
    let mut max_abs_t = 0.0f64;
    for ev in &report.per_event {
        let verdicts = ev.holm.as_ref().unwrap_or(&ev.pairwise);
        total += verdicts.pairs.len();
        distinguishable += verdicts.leak_count();
        for p in &ev.pairwise.pairs {
            max_abs_t = max_abs_t.max(p.test.t.abs());
        }
    }
    (distinguishable > 0, distinguishable, total, max_abs_t)
}

/// One arm of the frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierRow {
    /// Arm name (`baseline`, `constant-time`, …).
    pub arm: String,
    /// The countermeasure active on this arm (`None` on the baseline).
    pub countermeasure: Option<Countermeasure>,
    /// Whether the evaluator raised the alarm.
    pub alarm: bool,
    /// Distinguishable `(event, category-pair)` cells.
    pub distinguishable_pairs: usize,
    /// Total cells tested.
    pub total_pairs: usize,
    /// Largest |t| across all events and pairs.
    pub max_abs_t: f64,
    /// The extraction adversary's overall recovery score ∈ [0, 1].
    pub extraction_overall: f64,
    /// Mean simulated cycles per traced inference.
    pub mean_cycles: f64,
    /// `mean_cycles` relative to the baseline arm (1.0 there).
    pub overhead: f64,
    /// Combined leakage scalar ∈ [0, 1]: mean of the cell ratio and the
    /// extraction score.
    pub leakage: f64,
    /// Member of the Pareto-dominant set (never the baseline).
    pub pareto: bool,
    /// Held-out accuracy of the victim model.
    pub test_accuracy: f64,
    /// What the artifact cache contributed to the evaluator run.
    pub cache: CacheUsage,
    /// The extraction trace corpus was restored from the cache.
    pub trace_cache_hit: bool,
}

impl ToJson for FrontierRow {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("arm", &self.arm)
            .field("countermeasure", &self.countermeasure)
            .field("alarm", &self.alarm)
            .field("distinguishable_pairs", &self.distinguishable_pairs)
            .field("total_pairs", &self.total_pairs)
            .field("max_abs_t", &self.max_abs_t)
            .field("extraction_overall", &self.extraction_overall)
            .field("mean_cycles", &self.mean_cycles)
            .field("overhead", &self.overhead)
            .field("leakage", &self.leakage)
            .field("pareto", &self.pareto)
            .field("test_accuracy", &self.test_accuracy)
            .field("trace_cache_hit", &self.trace_cache_hit);
        obj.finish();
    }
}

/// The frontier campaign's result.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierOutcome {
    /// One row per arm, baseline first, in fixed arm order.
    pub rows: Vec<FrontierRow>,
    /// The dummy-event volume the calibrated-noise arm converged to.
    pub calibrated_dummy_events: u64,
    /// The |t| target calibration drove toward.
    pub target_t: f64,
}

impl FrontierOutcome {
    /// Arm names of the Pareto-dominant set, in row order.
    pub fn pareto_arms(&self) -> Vec<&str> {
        self.rows
            .iter()
            .filter(|r| r.pareto)
            .map(|r| r.arm.as_str())
            .collect()
    }

    /// Renders the frontier table for stdout.
    ///
    /// Column layout is fixed (not derived from the data), so the same
    /// numbers always produce byte-identical output.
    pub fn render_table(&self) -> String {
        let name_w = self
            .rows
            .iter()
            .map(|r| r.arm.len())
            .max()
            .unwrap_or(3)
            .max("arm".len());
        let mut out = String::new();
        out.push_str(&format!(
            "{:<name_w$}  {:>5}  {:>7}  {:>9}  {:>7}  {:>7}  {:>8}  {:>6}\n",
            "arm", "alarm", "cells", "max |t|", "extract", "leakage", "overhead", "pareto"
        ));
        out.push_str(&format!(
            "{:<name_w$}  {:>5}  {:>7}  {:>9}  {:>7}  {:>7}  {:>8}  {:>6}\n",
            "-".repeat(name_w),
            "-----",
            "-------",
            "---------",
            "-------",
            "-------",
            "--------",
            "------"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<name_w$}  {:>5}  {:>3}/{:<3}  {:>9.2}  {:>7.2}  {:>7.2}  {:>7.2}x  {:>6}\n",
                row.arm,
                if row.alarm { "YES" } else { "no" },
                row.distinguishable_pairs,
                row.total_pairs,
                row.max_abs_t,
                row.extraction_overall,
                row.leakage,
                row.overhead,
                if row.pareto { "*" } else { "" },
            ));
        }
        out
    }
}

impl ToJson for FrontierOutcome {
    fn write_json(&self, out: &mut String) {
        struct Names(Vec<String>);
        impl ToJson for Names {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                for (i, name) in self.0.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    name.write_json(out);
                }
                out.push(']');
            }
        }
        let pareto = Names(self.pareto_arms().iter().map(|s| (*s).to_owned()).collect());
        let mut obj = ObjectWriter::new(out);
        obj.field("rows", &self.rows)
            .field("pareto", &pareto)
            .field("calibrated_dummy_events", &self.calibrated_dummy_events)
            .field("target_t", &self.target_t);
        obj.finish();
    }
}

/// The fixed arm list, baseline first. The calibrated-noise arm is
/// appended by [`run_frontier`] once its volume is known.
fn fixed_arms(opts: &FrontierOptions) -> Vec<(&'static str, Option<Countermeasure>)> {
    vec![
        ("baseline", None),
        ("constant-time", Some(Countermeasure::ConstantTime)),
        ("shuffle", Some(Countermeasure::Shuffle)),
        (
            "noise-injection",
            Some(Countermeasure::NoiseInjection {
                dummy_events: opts.dummy_events,
            }),
        ),
        (
            "decoy-inference",
            Some(Countermeasure::DecoyInference {
                decoys: opts.decoys,
            }),
        ),
        ("oblivious-shape", Some(Countermeasure::ObliviousShape)),
    ]
}

/// Calibration floor and ceiling for the dummy-event search.
const CALIBRATE_START: u64 = 2_000;
const CALIBRATE_CAP: u64 = 512_000;

/// Finds the dummy-event volume at which noise injection pushes the
/// evaluator's max |t| below `target_t`, by doubling from
/// [`CALIBRATE_START`]: each probe volume runs the full (cache-resumed)
/// evaluation under `CalibratedNoise`, so a warm rerun replays the
/// whole search from checkpoints. Returns the converged volume, or the
/// cap when even [`CALIBRATE_CAP`] still leaks.
///
/// # Errors
///
/// Propagates the first failing calibration experiment.
pub fn calibrate_noise(
    base: &ExperimentConfig,
    target_t: f64,
    threads: Threads,
    cache: Option<&ArtifactCache>,
) -> Result<u64, Error> {
    let _span = scnn_obs::Span::enter("frontier.calibrate");
    let mut volume = CALIBRATE_START;
    loop {
        let mut cfg = base.clone().threads(threads);
        cfg.countermeasure = Some(Countermeasure::CalibratedNoise {
            target_t,
            dummy_events: volume,
        });
        let experiment = Experiment::new(cfg);
        let outcome = match cache {
            Some(cache) => experiment.run_cached(cache)?,
            None => experiment.run()?,
        };
        let (_, _, _, max_abs_t) = leak_stats(&outcome.report);
        scnn_obs::counter_add("frontier.calibration-runs", 1);
        if max_abs_t <= target_t || volume >= CALIBRATE_CAP {
            return Ok(volume);
        }
        volume *= 2;
    }
}

/// Traced inferences averaged for the overhead axis.
const OVERHEAD_REPS: usize = 4;

/// Mean simulated cycles per traced inference under `cm`, over
/// [`OVERHEAD_REPS`] test images. Seeded from the countermeasure's
/// canonical JSON, like every other per-arm stream.
fn mean_cycles(
    base: &ExperimentConfig,
    net: &Network,
    test_set: &Dataset,
    cm: Option<Countermeasure>,
) -> Result<f64, Error> {
    let mut cfg = base.clone();
    cfg.countermeasure = cm;
    let tag = artifact::cm_seed_tag(&cfg) as usize;
    let mut pmu = SimulatedPmu::new(base.pmu, category_seed(base.seed ^ 0xF507, tag))?;
    let group = CounterGroup::new(vec![HpcEvent::Cycles], 1)?;
    let mut classifier: Box<dyn crate::collect::TracedClassifier> = match cm {
        None => Box::new(net.clone()),
        Some(cm) => Box::new(crate::countermeasure::ProtectedModel::new(
            net.clone(),
            cm,
            category_seed(base.seed ^ 0xF508, tag),
        )),
    };
    let mut total = 0u64;
    for rep in 0..OVERHEAD_REPS {
        let (image, _) = test_set
            .get(rep % test_set.len())
            .ok_or_else(|| Error::msg("overhead measurement needs a non-empty test set"))?;
        let mut nn_err: Option<scnn_nn::NnError> = None;
        let m = pmu.measure(&group, &mut |probe| {
            if let Err(e) = classifier.classify_traced(image, probe) {
                nn_err = Some(e);
            }
        })?;
        if let Some(e) = nn_err {
            return Err(e.into());
        }
        total += m.value(HpcEvent::Cycles).unwrap_or(0);
    }
    Ok(total as f64 / OVERHEAD_REPS as f64)
}

/// Marks the Pareto-dominant set in place: non-baseline arms whose
/// leakage strictly improves on the baseline's and that no other such
/// candidate weakly dominates on (leakage, overhead), both minimized.
fn mark_pareto(rows: &mut [FrontierRow]) {
    let baseline_leakage = rows[0].leakage;
    let candidate: Vec<bool> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| i != 0 && r.leakage < baseline_leakage)
        .collect();
    for i in 0..rows.len() {
        if !candidate[i] {
            continue;
        }
        let dominated = rows.iter().enumerate().any(|(j, other)| {
            candidate[j]
                && j != i
                && other.leakage <= rows[i].leakage
                && other.overhead <= rows[i].overhead
                && (other.leakage < rows[i].leakage || other.overhead < rows[i].overhead)
        });
        rows[i].pareto = !dominated;
    }
}

/// Runs the frontier campaign: calibrates the noise arm, then evaluates
/// every arm against both adversaries and the cycle meter, and marks
/// the Pareto-dominant set.
///
/// Arms run as ordered coarse-grain jobs on a [`Pool`] with `threads`
/// workers (inner experiments forced to one thread); with a `cache`,
/// the model artifact is shared across arms (and with every other
/// subcommand), each arm's observations resume per category, and each
/// arm's extraction corpus is checkpointed under its content-addressed
/// trace key.
///
/// # Errors
///
/// Returns [`Error`] when `profile_fraction` lies outside `(0, 1)` or
/// any arm's training, measurement or profiling fails.
pub fn run_frontier(
    base: &ExperimentConfig,
    opts: &FrontierOptions,
    threads: Threads,
    cache: Option<&ArtifactCache>,
) -> Result<FrontierOutcome, Error> {
    if !opts.profile_fraction.is_finite()
        || opts.profile_fraction <= 0.0
        || opts.profile_fraction >= 1.0
    {
        return Err(crate::attack::AttackError::InvalidProfileFraction {
            fraction: opts.profile_fraction,
        }
        .into());
    }
    let _span = scnn_obs::Span::enter("frontier.run");
    let mut base = base.clone();
    // Both adversaries watch the full Fig 2b event set, like the sweep.
    base.collection.events = scnn_hpc::HpcEvent::FIG2B.to_vec();
    // 48 cells per arm: correct the alarm for multiple testing (see
    // `leak_stats`) so a quiet arm is not condemned by per-cell noise.
    base.evaluator.holm_alpha = Some(0.05);

    // Everything downstream shares one victim: train it (or restore it)
    // once, before any arm runs, so concurrent jobs never race to train.
    let net = {
        let _warm = scnn_obs::Span::enter("frontier.warm-model");
        extract::obtain_model(&base, cache)?
    };
    let test_set = base.generate_dataset(base.test_per_class, base.seed ^ 0xFACE)?;
    let (first_image, _) = test_set
        .get(0)
        .ok_or_else(|| Error::msg("frontier needs a non-empty test set"))?;
    let truth = extract::ground_truth(&net, first_image.shape())?;

    let calibrated = calibrate_noise(&base, opts.target_t, threads, cache)?;

    let samples = base.collection.samples_per_category;
    let profile_n = ((samples as f64 * opts.profile_fraction).round() as usize).clamp(1, samples);

    let mut arms = fixed_arms(opts);
    arms.push((
        "calibrated-noise",
        Some(Countermeasure::CalibratedNoise {
            target_t: opts.target_t,
            dummy_events: calibrated,
        }),
    ));

    let jobs: Vec<(usize, &'static str, Option<Countermeasure>)> = arms
        .iter()
        .enumerate()
        .map(|(i, (name, cm))| (i, *name, *cm))
        .collect();
    let pool = Pool::new(threads);
    let results = pool.par_map(jobs, |(index, name, cm)| {
        let _span = scnn_obs::Span::enter_indexed("frontier.arm", index as u64);
        // Evaluator adversary: the full pairwise-t-test experiment.
        let mut cfg = base.clone().threads(Threads::Count(1));
        cfg.countermeasure = cm;
        let experiment = Experiment::new(cfg);
        let outcome = match cache {
            Some(cache) => experiment.run_cached(cache)?,
            None => experiment.run()?,
        };
        let (alarm, distinguishable, total, max_abs_t) = leak_stats(&outcome.report);

        // Extraction adversary: profile a trace corpus, score recovery.
        let (corpus, trace_hit) = extract::obtain_traces(&base, &net, &test_set, cm, cache)?;
        let (_, score, _) = extract::profile_and_score(&corpus, profile_n, &truth)?;

        // Overhead axis: mean cycles per traced inference.
        let cycles = mean_cycles(&base, &net, &test_set, cm)?;

        let cell_ratio = if total == 0 {
            0.0
        } else {
            distinguishable as f64 / total as f64
        };
        Ok::<FrontierRow, Error>(FrontierRow {
            arm: name.to_owned(),
            countermeasure: cm,
            alarm,
            distinguishable_pairs: distinguishable,
            total_pairs: total,
            max_abs_t,
            extraction_overall: score.overall,
            mean_cycles: cycles,
            overhead: 0.0, // relative to baseline, filled below
            leakage: 0.5 * cell_ratio + 0.5 * score.overall,
            pareto: false, // marked below
            test_accuracy: outcome.test_accuracy,
            cache: outcome.cache,
            trace_cache_hit: trace_hit,
        })
    });

    let mut rows = Vec::with_capacity(results.len());
    for row in results {
        rows.push(row?);
    }
    let baseline_cycles = rows[0].mean_cycles;
    for row in &mut rows {
        row.overhead = if baseline_cycles > 0.0 {
            row.mean_cycles / baseline_cycles
        } else {
            1.0
        };
    }
    mark_pareto(&mut rows);
    Ok(FrontierOutcome {
        rows,
        calibrated_dummy_events: calibrated,
        target_t: opts.target_t,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(arm: &str, leakage: f64, overhead: f64) -> FrontierRow {
        FrontierRow {
            arm: arm.to_owned(),
            countermeasure: None,
            alarm: false,
            distinguishable_pairs: 0,
            total_pairs: 10,
            max_abs_t: 0.0,
            extraction_overall: leakage,
            mean_cycles: overhead,
            overhead,
            leakage,
            pareto: false,
            test_accuracy: 1.0,
            cache: CacheUsage::default(),
            trace_cache_hit: false,
        }
    }

    #[test]
    fn pareto_excludes_dominated_and_baseline() {
        let mut rows = vec![
            row("baseline", 0.9, 1.0),
            row("cheap-leaky", 0.5, 1.1),
            row("dominated", 0.6, 1.5), // beaten by cheap-leaky on both axes
            row("tight", 0.1, 2.0),
            row("worse-than-baseline", 0.95, 3.0),
        ];
        mark_pareto(&mut rows);
        let pareto: Vec<&str> = rows
            .iter()
            .filter(|r| r.pareto)
            .map(|r| r.arm.as_str())
            .collect();
        assert_eq!(pareto, ["cheap-leaky", "tight"]);
    }

    #[test]
    fn pareto_keeps_ties_and_incomparables() {
        // Two arms tied on both axes: neither strictly improves on the
        // other, so both survive (weak dominance needs one strict edge).
        let mut rows = vec![
            row("baseline", 0.9, 1.0),
            row("a", 0.4, 1.2),
            row("b", 0.4, 1.2),
        ];
        mark_pareto(&mut rows);
        assert!(rows[1].pareto && rows[2].pareto);
        assert!(!rows[0].pareto, "the baseline is never on the frontier");
    }

    #[test]
    fn render_table_is_fixed_layout() {
        let mut rows = vec![row("baseline", 0.9, 1.0), row("constant-time", 0.2, 1.8)];
        mark_pareto(&mut rows);
        let outcome = FrontierOutcome {
            rows,
            calibrated_dummy_events: 4_000,
            target_t: 1.5,
        };
        let table = outcome.render_table();
        assert!(table.contains("overhead"));
        assert!(table.contains("constant-time"));
        assert_eq!(outcome.pareto_arms(), ["constant-time"]);
        let json = outcome.to_json();
        assert!(json.contains("\"pareto\":[\"constant-time\"]"), "{json}");
        assert!(json.contains("\"calibrated_dummy_events\":4000"));
    }

    #[test]
    fn options_default_matches_the_ablation_budget() {
        let opts = FrontierOptions::default();
        assert_eq!(opts.dummy_events, 20_000);
        assert!(opts.target_t < 2.0, "target sits below the |t| threshold");
        assert_eq!(fixed_arms(&opts).len(), 6, "six fixed arms + calibrated");
    }
}
