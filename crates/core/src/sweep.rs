//! Microarchitecture sweep: the full t-test evaluation fanned across a
//! zoo of simulated platforms.
//!
//! The paper evaluates one machine (a Xeon E5-2690). The sweep asks the
//! natural follow-up — *does the alarm generalise?* — by running the
//! identical experiment (same dataset, same trained model, same seeds)
//! on every [`UarchConfig`] in a zoo and tabulating, per platform, the
//! alarm verdict, how many category pairs are distinguishable, and the
//! largest |t| observed.
//!
//! Two design points keep the sweep honest and cheap:
//!
//! - **Coarse-grain parallelism, deterministic output.** Each preset is
//!   one `scnn-par` job (its inner experiment runs single-threaded), and
//!   [`par_map`]'s ordered collection means rows come back in zoo order
//!   regardless of worker count — sweep output is byte-identical at any
//!   `--threads`.
//! - **Shared model artifact.** Training does not depend on the
//!   simulated platform, and [`crate::artifact::model_key`] excludes the
//!   PMU config, so with a cache attached the model trains once and
//!   every preset reuses it; per-preset observation artifacts are keyed
//!   by the full uarch config (see [`crate::zoo`]), so re-running a
//!   sweep resumes per preset.

use crate::artifact;
use crate::json::{ObjectWriter, ToJson};
use crate::pipeline::{CacheUsage, Experiment, ExperimentConfig, ExperimentError};
use scnn_cache::ArtifactCache;
use scnn_par::{Pool, Threads};
use scnn_uarch::UarchConfig;

/// One row of the sweep's leak table: the evaluator's verdict on one
/// simulated platform.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Preset name ([`UarchConfig::name`]).
    pub preset: String,
    /// Whether the evaluator raised the alarm on this platform.
    pub alarm: bool,
    /// Distinguishable `(event, category-pair)` cells — the count of
    /// stars a paper-style t-table would carry for this platform. The
    /// per-pair union is nearly platform-invariant (the leak lives in
    /// the software), but which *events* expose it is a property of the
    /// microarchitecture, so this is the column that separates presets.
    pub distinguishable_pairs: usize,
    /// Total `(event, category-pair)` cells tested.
    pub total_pairs: usize,
    /// Largest |t| across all events and pairs.
    pub max_abs_t: f64,
    /// Per-event distinguishable-pair counts, `(perf name, count)`, in
    /// measurement order.
    pub per_event: Vec<(String, usize)>,
    /// Held-out accuracy of the victim model (identical across rows when
    /// the model artifact is shared).
    pub test_accuracy: f64,
    /// What the artifact cache contributed to this row.
    pub cache: CacheUsage,
}

impl SweepRow {
    fn from_outcome(preset: &str, outcome: &crate::pipeline::ExperimentOutcome) -> SweepRow {
        let report = &outcome.report;
        let mut distinguishable = 0;
        let mut total = 0;
        let mut max_abs_t = 0.0f64;
        for ev in &report.per_event {
            total += ev.pairwise.pairs.len();
            distinguishable += ev.pairwise.leak_count();
            for p in &ev.pairwise.pairs {
                max_abs_t = max_abs_t.max(p.test.t.abs());
            }
        }
        SweepRow {
            preset: preset.to_owned(),
            alarm: report.alarm().raised(),
            distinguishable_pairs: distinguishable,
            total_pairs: total,
            max_abs_t,
            per_event: report
                .per_event
                .iter()
                .map(|e| (e.event.perf_name().to_owned(), e.pairwise.leak_count()))
                .collect(),
            test_accuracy: outcome.test_accuracy,
            cache: outcome.cache,
        }
    }
}

impl ToJson for SweepRow {
    fn write_json(&self, out: &mut String) {
        struct Events<'a>(&'a [(String, usize)]);
        impl ToJson for Events<'_> {
            fn write_json(&self, out: &mut String) {
                let mut obj = ObjectWriter::new(out);
                for (name, count) in self.0 {
                    obj.field(name, count);
                }
                obj.finish();
            }
        }
        struct Cache(CacheUsage);
        impl ToJson for Cache {
            fn write_json(&self, out: &mut String) {
                let mut obj = ObjectWriter::new(out);
                obj.field("model_hit", &self.0.model_hit)
                    .field("categories_hit", &self.0.categories_hit)
                    .field("categories_collected", &self.0.categories_collected)
                    .field("writes", &self.0.writes);
                obj.finish();
            }
        }
        let mut obj = ObjectWriter::new(out);
        obj.field("preset", &self.preset)
            .field("alarm", &self.alarm)
            .field("distinguishable_pairs", &self.distinguishable_pairs)
            .field("total_pairs", &self.total_pairs)
            .field("max_abs_t", &self.max_abs_t)
            .field("per_event", &Events(&self.per_event))
            .field("test_accuracy", &self.test_accuracy)
            .field("cache", &Cache(self.cache));
        obj.finish();
    }
}

/// The sweep's leak table, rows in zoo order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// One row per preset.
    pub rows: Vec<SweepRow>,
}

impl SweepOutcome {
    /// Number of presets whose evaluation raised the alarm.
    pub fn alarms(&self) -> usize {
        self.rows.iter().filter(|r| r.alarm).count()
    }

    /// Renders the leak table for stdout.
    ///
    /// Column layout is fixed (not derived from the data), so the same
    /// verdicts always produce byte-identical output.
    pub fn render_table(&self) -> String {
        let name_w = self
            .rows
            .iter()
            .map(|r| r.preset.len())
            .max()
            .unwrap_or(6)
            .max("preset".len());
        let mut out = String::new();
        out.push_str(&format!(
            "{:<name_w$}  {:>5}  {:>7}  {:>9}\n",
            "preset", "alarm", "pairs", "max |t|"
        ));
        out.push_str(&format!(
            "{:<name_w$}  {:>5}  {:>7}  {:>9}\n",
            "-".repeat(name_w),
            "-----",
            "-------",
            "---------"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<name_w$}  {:>5}  {:>3}/{:<3}  {:>9.2}\n",
                row.preset,
                if row.alarm { "YES" } else { "no" },
                row.distinguishable_pairs,
                row.total_pairs,
                row.max_abs_t,
            ));
        }
        out
    }
}

impl ToJson for SweepOutcome {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("rows", &self.rows)
            .field("alarms", &self.alarms());
        obj.finish();
    }
}

/// A sweep failure, tagged with the preset that caused it.
#[derive(Debug)]
pub struct SweepError {
    /// The offending preset's name.
    pub preset: String,
    /// The underlying experiment failure.
    pub source: ExperimentError,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sweep preset {:?}: {}", self.preset, self.source)
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Runs `base` once per zoo entry and assembles the leak table.
///
/// The sweep monitors **all eight** of the paper's HPC events (Fig 2b),
/// not just the two headline ones: the per-pair leak verdict is nearly
/// platform-invariant, but *which events* expose it — cache-references
/// tracks L1/L2 geometry, branch-misses tracks the predictor — is
/// exactly what a cross-platform sweep is for.
///
/// Each preset replaces `base.pmu.core` (every other parameter — seeds,
/// samples, evaluator — is held fixed) and runs as one coarse-grain job
/// on a [`Pool`] with `threads` workers; the inner experiment is forced
/// to a single thread so parallelism lives at exactly one level. With a
/// `cache`, each job goes through [`Experiment::run_cached`]; the
/// cache's atomic writes make concurrent jobs safe, and the shared
/// model artifact means only the first sweep (or first row) trains.
///
/// # Errors
///
/// Returns the first failing preset's [`SweepError`], in zoo order.
pub fn run_sweep(
    base: &ExperimentConfig,
    zoo: &[UarchConfig],
    threads: Threads,
    cache: Option<&ArtifactCache>,
) -> Result<SweepOutcome, SweepError> {
    let _span = scnn_obs::Span::enter("sweep.run");
    let mut base = base.clone();
    base.collection.events = scnn_hpc::HpcEvent::FIG2B.to_vec();
    // With a cold cache every job would race to train the one shared
    // model (identical bytes, but wasted work per worker). Warm the
    // model artifact once, up front, under its own span.
    if let Some(cache) = cache {
        let inner = base.clone().threads(Threads::Count(1));
        if !cache.contains("model", artifact::model_key(&inner)) {
            let _warm = scnn_obs::Span::enter("sweep.warm-model");
            Experiment::new(inner)
                .run_cached(cache)
                .map_err(|source| SweepError {
                    preset: "(model warm-up)".to_owned(),
                    source,
                })?;
        }
    }
    let jobs: Vec<(usize, UarchConfig)> = zoo.iter().cloned().enumerate().collect();
    let pool = Pool::new(threads);
    let rows = pool.par_map(jobs, |(index, preset)| {
        let _span = scnn_obs::Span::enter_indexed("sweep.preset", index as u64);
        let mut cfg = base.clone().threads(Threads::Count(1));
        cfg.pmu.core = preset.core;
        let experiment = Experiment::new(cfg);
        let outcome = match cache {
            Some(cache) => experiment.run_cached(cache),
            None => experiment.run(),
        };
        outcome
            .map(|o| SweepRow::from_outcome(&preset.name, &o))
            .map_err(|source| SweepError {
                preset: preset.name.clone(),
                source,
            })
    });
    let mut table = Vec::with_capacity(rows.len());
    for row in rows {
        table.push(row?);
    }
    Ok(SweepOutcome { rows: table })
}
