//! Rendering the paper's tables and figures from evaluation results.
//!
//! All output is plain text: the `repro` binary prints these renderings
//! so each experiment regenerates the corresponding artefact of the
//! paper (Figure 1, Figures 3–4, Tables 1–2).

use crate::collect::CategoryObservations;
use crate::evaluator::LeakageReport;
use scnn_hpc::HpcEvent;
use scnn_stats::{Histogram, KernelDensity};
use std::fmt::Write as _;

impl LeakageReport {
    /// Renders the paper's Table 1/2 layout: one row per category pair,
    /// `t`/`p` columns per event, `*` marking pairs the decision rule
    /// distinguishes (the paper's bold face).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        // Header.
        write!(out, "{:<8}", "pair").expect("writing to String cannot fail");
        for ev in &self.per_event {
            write!(out, "{:>24}", ev.event.perf_name()).expect("infallible");
            write!(out, "{:>12}", "").expect("infallible");
        }
        out.push('\n');
        write!(out, "{:<8}", "").expect("infallible");
        for _ in &self.per_event {
            write!(out, "{:>24}{:>12}", "t-values", "p-values").expect("infallible");
        }
        out.push('\n');

        if self.per_event.is_empty() {
            return out;
        }
        let pair_list: Vec<(usize, usize)> = self.per_event[0]
            .pairwise
            .pairs
            .iter()
            .map(|p| (p.i, p.j))
            .collect();
        for &(i, j) in &pair_list {
            // Category labels are 1-based in the paper.
            write!(out, "t{},{}  ", i + 1, j + 1).expect("infallible");
            for ev in &self.per_event {
                let pair = ev
                    .pairwise
                    .pair(i, j)
                    .expect("all events share the category set");
                let star = if pair.distinguishable { "*" } else { " " };
                let p_str = if pair.test.p < 5e-5 {
                    "~0".to_owned()
                } else {
                    format!("{:.4}", pair.test.p)
                };
                write!(
                    out,
                    "{:>23}{star}{:>12}",
                    format!("{:+.4}", pair.test.t),
                    p_str
                )
                .expect("infallible");
            }
            out.push('\n');
        }
        out.push('\n');
        let _ = writeln!(out, "{}", self.alarm());
        out
    }

    /// Renders the Figure 1 bar chart: mean value of `event` per
    /// category.
    pub fn render_means(&self, event: HpcEvent, width: usize) -> String {
        let Some(ev) = self.event(event) else {
            return format!("event {event} was not measured\n");
        };
        let max = ev
            .summaries
            .iter()
            .map(|s| s.mean())
            .fold(f64::MIN, f64::max)
            .max(1e-9);
        let mut out = format!("average {event} per category\n");
        for (c, s) in ev.summaries.iter().enumerate() {
            let bar = ((s.mean() / max) * width as f64).round().max(0.0) as usize;
            let _ = writeln!(
                out,
                "category {:<2} | {:<width$} {:.1}",
                c + 1,
                "#".repeat(bar.min(width)),
                s.mean(),
                width = width
            );
        }
        out
    }
}

/// Renders the Figure 3/4 panel: per-category histograms of one event's
/// observations over a shared range, so overlap is visually comparable.
pub fn render_distributions(
    observations: &[CategoryObservations],
    event: HpcEvent,
    bins: usize,
) -> String {
    let mut all: Vec<f64> = Vec::new();
    for obs in observations {
        if let Some(series) = obs.series(event) {
            all.extend_from_slice(series);
        }
    }
    if all.is_empty() {
        return format!("no observations of {event}\n");
    }
    let lo = all.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = all.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let range = if lo == hi {
        (lo - 0.5, hi + 0.5)
    } else {
        (lo, hi + (hi - lo) * 1e-9)
    };

    let mut out = format!("distribution of {event} per category\n");
    for obs in observations {
        let Some(series) = obs.series(event) else {
            continue;
        };
        let _ = writeln!(out, "-- category {} --", obs.category + 1);
        match Histogram::from_data(series, bins, Some(range)) {
            Ok(h) => out.push_str(&h.ascii(40)),
            Err(e) => {
                let _ = writeln!(out, "  (cannot histogram: {e})");
            }
        }
    }
    out
}

/// Renders smooth per-category density curves (Gaussian KDE) of one
/// event — the line-plot form the paper's Figures 3–4 panels use. Each
/// category becomes a `(grid, density)` series; the text rendering prints
/// the curve as a fixed-width profile.
pub fn render_kde(observations: &[CategoryObservations], event: HpcEvent, points: usize) -> String {
    let mut out = format!("density of {event} per category (Gaussian KDE)\n");
    for obs in observations {
        let Some(series) = obs.series(event) else {
            continue;
        };
        let _ = writeln!(out, "-- category {} --", obs.category + 1);
        match KernelDensity::fit(series, points) {
            Ok(kde) => {
                let max = kde
                    .density()
                    .iter()
                    .copied()
                    .fold(f64::MIN, f64::max)
                    .max(1e-300);
                for (g, d) in kde.grid().iter().zip(kde.density()) {
                    let bar = ((d / max) * 40.0).round() as usize;
                    let _ = writeln!(out, "{:>14.1} | {}", g, "*".repeat(bar.min(40)));
                }
            }
            Err(e) => {
                let _ = writeln!(out, "  (cannot fit: {e})");
            }
        }
    }
    out
}

/// Renders summary statistics (mean ± std, min/max) per category for one
/// event — the numeric companion to the figures.
pub fn render_summary(observations: &[CategoryObservations], event: HpcEvent) -> String {
    let mut out = format!("{event}: per-category summary\n");
    for obs in observations {
        let Some(series) = obs.series(event) else {
            continue;
        };
        let s: scnn_stats::Summary = series.iter().copied().collect();
        let _ = writeln!(
            out,
            "category {:<2} n={:<4} mean={:<14.1} std={:<12.1} min={:<12.0} max={:.0}",
            obs.category + 1,
            s.count(),
            s.mean(),
            s.sample_std(),
            s.min(),
            s.max()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::Evaluator;
    use std::collections::BTreeMap;

    fn obs() -> Vec<CategoryObservations> {
        (0..3)
            .map(|c| {
                let mut per_event = BTreeMap::new();
                per_event.insert(
                    HpcEvent::CacheMisses,
                    (0..30).map(|i| (c * 100) as f64 + (i % 7) as f64).collect(),
                );
                per_event.insert(
                    HpcEvent::Branches,
                    (0..30).map(|i| 1000.0 + (i % 7) as f64).collect(),
                );
                CategoryObservations {
                    category: c,
                    per_event,
                    predictions: vec![c; 30],
                }
            })
            .collect()
    }

    #[test]
    fn table_contains_all_pairs_and_stars() {
        let report = Evaluator::default().evaluate(&obs()).unwrap();
        let table = report.render_table();
        for pair in ["t1,2", "t1,3", "t2,3"] {
            assert!(table.contains(pair), "missing {pair} in:\n{table}");
        }
        assert!(table.contains("cache-misses"));
        assert!(table.contains("branches"));
        assert!(
            table.contains('*'),
            "separated cache-misses must be starred"
        );
        assert!(table.contains("~0"), "huge separation gives p ≈ 0");
        assert!(table.contains("ALARM"));
    }

    #[test]
    fn means_bars_scale() {
        let report = Evaluator::default().evaluate(&obs()).unwrap();
        let fig = report.render_means(HpcEvent::CacheMisses, 30);
        assert_eq!(fig.lines().count(), 4, "title + 3 categories");
        // Highest-mean category has the longest bar.
        let bars: Vec<usize> = fig
            .lines()
            .skip(1)
            .map(|l| l.chars().filter(|&ch| ch == '#').count())
            .collect();
        assert!(bars[2] > bars[0]);
        let missing = report.render_means(HpcEvent::Cycles, 30);
        assert!(missing.contains("not measured"));
    }

    #[test]
    fn distributions_render_per_category() {
        let text = render_distributions(&obs(), HpcEvent::CacheMisses, 8);
        assert!(text.contains("-- category 1 --"));
        assert!(text.contains("-- category 3 --"));
        assert!(text.contains('#'));
        assert!(render_distributions(&obs(), HpcEvent::Cycles, 8).contains("no observations"));
    }

    #[test]
    fn kde_renders_per_category() {
        let text = render_kde(&obs(), HpcEvent::CacheMisses, 21);
        assert!(text.contains("-- category 1 --"));
        assert!(text.contains('*'));
        assert_eq!(
            text.matches("-- category").count(),
            3,
            "one curve per category"
        );
    }

    #[test]
    fn summary_lists_stats() {
        let text = render_summary(&obs(), HpcEvent::Branches);
        assert!(text.contains("n=30"));
        assert!(text.contains("mean="));
        assert_eq!(text.lines().count(), 4);
    }
}
