//! Fleet-scale evaluation service: the job protocol and serve loop
//! behind `repro serve`.
//!
//! The ROADMAP's "millions of users" direction needs the evaluator to
//! run as a long-lived **service** — thousands of submitted models
//! audited concurrently against one shared artifact cache — instead of
//! one CLI invocation per experiment. This module provides the
//! transport-agnostic half of that service:
//!
//! - a newline-delimited JSON **job protocol** ([`JobSpec`] in,
//!   [`JobResponse`] out), parsed and emitted with the in-tree
//!   [`crate::json`] reader/writer;
//! - the **serve loop** ([`serve`]) — the calling thread reads job
//!   lines from any [`BufRead`] (stdin, a Unix-socket connection, a
//!   file) while a bounded worker fleet ([`scnn_par::Pool::stream`])
//!   executes jobs and streams responses back as they complete;
//! - per-run accounting ([`ServiceReport`]): jobs/sec, p50/p99 job
//!   latency, queue depth and aggregated cache traffic
//!   ([`CacheTraffic`]) — the numbers `BENCH_service.json` records.
//!
//! What a job *does* is the caller's business: [`serve`] takes an
//! executor closure, so `repro serve` plugs in its CLI-equivalent
//! command runner (per-job stdout byte-identical to a direct `repro`
//! invocation) while tests and benches plug in synthetic executors. A
//! panicking executor fails that one job — the worker catches the
//! unwind and reports `status: "error"` — it never takes the service
//! down.
//!
//! # Protocol
//!
//! One JSON object per line in, one per line out. Requests:
//!
//! ```json
//! {"id":"job-1","command":"table1","quick":true,"samples":8}
//! {"id":"bye","command":"shutdown"}
//! ```
//!
//! `id` (a filename-safe slug, ≤ 64 chars) and `command` are required;
//! all other members are parameters interpreted by the executor. The
//! reserved command `shutdown` drains the queue and ends the serve loop
//! after responding. Responses carry the job id, `"status":"ok"` (with
//! the captured stdout and cache traffic) or `"status":"error"` (with a
//! message), and the job's wall-clock latency in milliseconds measured
//! from submission to completion — queueing included, because that is
//! the latency a submitter experiences. A line that fails to parse is
//! rejected with a response of id `null` (or the id, when one could be
//! salvaged) rather than killing the connection.
//!
//! Responses arrive in **completion order**, not submission order — the
//! id is the correlation key. With `workers = 1` the loop degrades to
//! strict read-execute-respond sequencing, which is deterministic and
//! what the protocol tests pin.

use crate::json::{self, ObjectWriter, ToJson};
use crate::pipeline::CacheUsage;
use scnn_par::{Pool, Threads};
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;

/// The reserved command that ends the serve loop.
pub const SHUTDOWN_COMMAND: &str = "shutdown";

/// One parsed job submission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Caller-chosen correlation id (validated filename-safe slug).
    pub id: String,
    /// What to run — interpreted by the executor, except the reserved
    /// [`SHUTDOWN_COMMAND`].
    pub command: String,
    params: json::Value,
}

impl JobSpec {
    /// Parses one protocol line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the line is not a JSON
    /// object, or `id`/`command` are missing or malformed. When the
    /// object at least carried a usable id, the error includes it so
    /// the response can still be correlated.
    pub fn parse_line(line: &str) -> Result<JobSpec, (Option<String>, String)> {
        let value = json::parse(line).map_err(|e| (None, format!("bad job line: {e}")))?;
        let id = match value.get("id").and_then(json::Value::as_str) {
            Some(id) => id.to_owned(),
            None => return Err((None, "job object needs a string \"id\"".into())),
        };
        if !id_is_safe(&id) {
            return Err((
                None,
                format!(
                    "job id {id:?} must be 1-64 chars of [A-Za-z0-9._-] and not start with '.'"
                ),
            ));
        }
        let command = match value.get("command").and_then(json::Value::as_str) {
            Some(cmd) if !cmd.is_empty() => cmd.to_owned(),
            _ => {
                return Err((
                    Some(id),
                    "job object needs a non-empty string \"command\"".into(),
                ))
            }
        };
        Ok(JobSpec {
            id,
            command,
            params: value,
        })
    }

    /// True when this submission is the reserved shutdown request.
    pub fn is_shutdown(&self) -> bool {
        self.command == SHUTDOWN_COMMAND
    }

    /// A raw parameter by key (any member other than `id`/`command`).
    pub fn param(&self, key: &str) -> Option<&json::Value> {
        self.params.get(key)
    }

    /// A non-negative integer parameter.
    ///
    /// # Errors
    ///
    /// Returns a message when present but not a whole non-negative
    /// number.
    pub fn usize_param(&self, key: &str) -> Result<Option<usize>, String> {
        match self.param(key) {
            None => Ok(None),
            Some(v) => match v.as_f64() {
                Some(n) if n >= 0.0 && n.fract() == 0.0 && n <= usize::MAX as f64 => {
                    Ok(Some(n as usize))
                }
                _ => Err(format!("parameter {key:?} must be a non-negative integer")),
            },
        }
    }

    /// A boolean parameter.
    ///
    /// # Errors
    ///
    /// Returns a message when present but not a boolean.
    pub fn bool_param(&self, key: &str) -> Result<bool, String> {
        match self.param(key) {
            None => Ok(false),
            Some(v) => v
                .as_bool()
                .ok_or_else(|| format!("parameter {key:?} must be a boolean")),
        }
    }

    /// A string parameter.
    ///
    /// # Errors
    ///
    /// Returns a message when present but not a string.
    pub fn str_param(&self, key: &str) -> Result<Option<&str>, String> {
        match self.param(key) {
            None => Ok(None),
            Some(v) => v
                .as_str()
                .map(Some)
                .ok_or_else(|| format!("parameter {key:?} must be a string")),
        }
    }

    /// A floating-point parameter (e.g. `profile_frac` on `extract`
    /// jobs). Range checks are the executor's business — this only
    /// enforces that the member is a number.
    ///
    /// # Errors
    ///
    /// Returns a message when the parameter exists but is not a number.
    pub fn f64_param(&self, key: &str) -> Result<Option<f64>, String> {
        match self.param(key) {
            None => Ok(None),
            Some(v) => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| format!("parameter {key:?} must be a number")),
        }
    }
}

/// Job ids double as file stems (`--job-stdout-dir`), so they must not
/// traverse paths or hide as dotfiles.
fn id_is_safe(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && !id.starts_with('.')
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.'))
}

/// Aggregated [`ArtifactCache`](scnn_cache::ArtifactCache) traffic
/// across the experiments a job (or a whole service run) executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheTraffic {
    /// Trained models restored from the cache.
    pub model_hits: u64,
    /// Models trained because the cache missed.
    pub model_misses: u64,
    /// Monitored categories restored from checkpoints.
    pub categories_hit: u64,
    /// Monitored categories measured afresh.
    pub categories_collected: u64,
    /// Artifacts written.
    pub writes: u64,
}

impl CacheTraffic {
    /// Folds one experiment's [`CacheUsage`] into the totals.
    pub fn add_usage(&mut self, usage: &CacheUsage) {
        if usage.model_hit {
            self.model_hits += 1;
        } else {
            self.model_misses += 1;
        }
        self.categories_hit += usage.categories_hit as u64;
        self.categories_collected += usage.categories_collected as u64;
        self.writes += usage.writes as u64;
    }

    /// Folds another traffic total into this one.
    pub fn merge(&mut self, other: &CacheTraffic) {
        self.model_hits += other.model_hits;
        self.model_misses += other.model_misses;
        self.categories_hit += other.categories_hit;
        self.categories_collected += other.categories_collected;
        self.writes += other.writes;
    }

    /// Total artifact lookups this traffic represents.
    pub fn lookups(&self) -> u64 {
        self.model_hits + self.model_misses + self.categories_hit + self.categories_collected
    }

    /// Fraction of lookups served from the cache (`NaN` when there were
    /// none — encoded as `null` in JSON).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            f64::NAN
        } else {
            (self.model_hits + self.categories_hit) as f64 / lookups as f64
        }
    }
}

impl ToJson for CacheTraffic {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("model_hits", &self.model_hits)
            .field("model_misses", &self.model_misses)
            .field("categories_hit", &self.categories_hit)
            .field("categories_collected", &self.categories_collected)
            .field("writes", &self.writes)
            .field("hit_rate", &self.hit_rate());
        obj.finish();
    }
}

/// What an executor produced for one successful job.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobOutput {
    /// The job's captured stdout — byte-identical to the equivalent
    /// direct CLI run by construction (same code path).
    pub stdout: String,
    /// Cache traffic the job generated, when it ran against a cache.
    pub cache: Option<CacheTraffic>,
}

/// How the serve loop runs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker-fleet size. `Threads::Count(1)` gives strict
    /// read-execute-respond sequencing.
    pub workers: Threads,
    /// Embed each job's captured stdout in its response line. Turn off
    /// when responses should stay small and stdout goes elsewhere
    /// (`--job-stdout-dir`).
    pub include_stdout: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: Threads::Auto,
            include_stdout: true,
        }
    }
}

/// Everything one [`serve`] run did — the service's benchmark surface.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// Job lines accepted (parsed and executed, including failures).
    pub jobs: u64,
    /// Jobs that completed successfully.
    pub ok: u64,
    /// Jobs whose executor failed or panicked.
    pub errors: u64,
    /// Lines rejected before execution (protocol violations).
    pub rejected: u64,
    /// The loop ended on an explicit `shutdown` command (as opposed to
    /// end-of-input).
    pub shutdown: bool,
    /// Wall-clock of the whole serve loop, seconds.
    pub elapsed_s: f64,
    /// Completed jobs per second of wall-clock.
    pub jobs_per_sec: f64,
    /// Median submission-to-completion latency, ms (`NaN` → JSON
    /// `null` when no job ran).
    pub p50_ms: f64,
    /// 99th-percentile submission-to-completion latency, ms.
    pub p99_ms: f64,
    /// Highest backlog observed at any enqueue.
    pub max_queue_depth: usize,
    /// Write/read failures on the response stream (responses are
    /// best-effort once the stream breaks).
    pub io_errors: u64,
    /// Aggregated cache traffic across all successful jobs.
    pub cache: CacheTraffic,
}

impl ToJson for ServiceReport {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("jobs", &self.jobs)
            .field("ok", &self.ok)
            .field("errors", &self.errors)
            .field("rejected", &self.rejected)
            .field("shutdown", &self.shutdown)
            .field("elapsed_s", &self.elapsed_s)
            .field("jobs_per_sec", &self.jobs_per_sec)
            .field("p50_ms", &self.p50_ms)
            .field("p99_ms", &self.p99_ms)
            .field("max_queue_depth", &self.max_queue_depth)
            .field("io_errors", &self.io_errors)
            .field("cache", &self.cache);
        obj.finish();
    }
}

/// Nearest-rank percentile of an unsorted latency sample (`NaN` when
/// empty).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One submission travelling through the fleet.
enum Submission {
    Job(JobSpec, Instant),
    Reject {
        id: Option<String>,
        error: String,
        at: Instant,
    },
}

/// A finished submission, ready to write.
struct Done {
    line: String,
    latency_ms: f64,
    outcome: Outcome,
}

enum Outcome {
    Ok(Option<CacheTraffic>),
    Error,
    Rejected,
}

fn response_line(
    id: Option<&str>,
    result: &Result<JobOutput, String>,
    latency_ms: f64,
    include_stdout: bool,
) -> String {
    let mut out = String::new();
    {
        let mut obj = ObjectWriter::new(&mut out);
        match id {
            Some(id) => obj.field("id", id),
            None => obj.field("id", &json::Value::Null),
        };
        match result {
            Ok(output) => {
                obj.field("status", "ok");
                if include_stdout {
                    obj.field("stdout", output.stdout.as_str());
                }
                if let Some(cache) = &output.cache {
                    obj.field("cache", cache);
                }
            }
            Err(message) => {
                obj.field("status", "error");
                obj.field("error", message.as_str());
            }
        }
        obj.field("latency_ms", &latency_ms);
        obj.finish();
    }
    out
}

impl ToJson for json::Value {
    fn write_json(&self, out: &mut String) {
        match self {
            json::Value::Null => out.push_str("null"),
            json::Value::Bool(b) => b.write_json(out),
            json::Value::Number(n) => n.write_json(out),
            json::Value::String(s) => s.write_json(out),
            json::Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            json::Value::Object(members) => {
                let mut obj = ObjectWriter::new(out);
                for (key, value) in members {
                    obj.field(key, value);
                }
                obj.finish();
            }
        }
    }
}

/// Runs the serve loop: read newline-delimited [`JobSpec`]s from
/// `input`, execute them on a worker fleet sized by
/// `config.workers`, and stream one response line per job to `output`
/// as each completes.
///
/// The calling thread does the reading (so a blocking transport never
/// stalls the workers) and returns once the input is exhausted — or a
/// [`SHUTDOWN_COMMAND`] job was seen — *and* every queued job has been
/// answered. Zero jobs are lost or duplicated: the returned
/// [`ServiceReport`] accounts for every accepted line exactly once, a
/// contract inherited from [`Pool::stream`] and pinned end-to-end by
/// `tests/service.rs` and the service bench.
///
/// The executor runs on worker threads; a panic inside it is caught
/// and reported as that job's error. Telemetry (observation-only, like
/// everywhere else): a `service.job` span per job on its worker,
/// `service.jobs` / `service.ok` / `service.errors` / `service.rejected`
/// counters, and a `service.latency_ms` histogram, all flowing to an
/// installed [`scnn_obs`] recorder.
pub fn serve<F>(
    input: impl BufRead,
    output: impl Write + Send,
    config: &ServiceConfig,
    executor: F,
) -> ServiceReport
where
    F: Fn(&JobSpec) -> Result<JobOutput, String> + Sync,
{
    let _span = scnn_obs::Span::enter("service.run");
    let started = Instant::now();
    let include_stdout = config.include_stdout;

    let sink = Mutex::new(output);
    let io_errors = Mutex::new(0u64);
    let latencies = Mutex::new(Vec::<f64>::new());
    let tally = Mutex::new((0u64, 0u64, 0u64, CacheTraffic::default())); // ok, errors, rejected, cache
    let mut shutdown = false;

    let mut lines = input.lines();
    let mut stopped = false;
    let shutdown_flag = &mut shutdown;

    let work = |submission: Submission| -> Done {
        match submission {
            Submission::Job(spec, at) => {
                let span = scnn_obs::Span::enter("service.job");
                let result = if spec.is_shutdown() {
                    Ok(JobOutput::default())
                } else {
                    catch_unwind(AssertUnwindSafe(|| executor(&spec))).unwrap_or_else(|panic| {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_owned())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "job panicked".into());
                        Err(format!("job panicked: {msg}"))
                    })
                };
                drop(span);
                let latency_ms = at.elapsed().as_secs_f64() * 1e3;
                let outcome = match &result {
                    Ok(output) => Outcome::Ok(output.cache),
                    Err(_) => Outcome::Error,
                };
                Done {
                    line: response_line(Some(&spec.id), &result, latency_ms, include_stdout),
                    latency_ms,
                    outcome,
                }
            }
            Submission::Reject { id, error, at } => {
                let latency_ms = at.elapsed().as_secs_f64() * 1e3;
                Done {
                    line: response_line(id.as_deref(), &Err(error), latency_ms, include_stdout),
                    latency_ms,
                    outcome: Outcome::Rejected,
                }
            }
        }
    };
    let done = |done: Done| {
        {
            let mut tally = tally
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match done.outcome {
                Outcome::Ok(cache) => {
                    tally.0 += 1;
                    scnn_obs::counter_add("service.ok", 1);
                    if let Some(cache) = cache {
                        tally.3.merge(&cache);
                    }
                }
                Outcome::Error => {
                    tally.1 += 1;
                    scnn_obs::counter_add("service.errors", 1);
                }
                Outcome::Rejected => {
                    tally.2 += 1;
                    scnn_obs::counter_add("service.rejected", 1);
                }
            }
        }
        scnn_obs::histogram_record("service.latency_ms", done.latency_ms);
        latencies
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(done.latency_ms);
        let mut sink = sink
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let wrote = writeln!(sink, "{}", done.line).and_then(|()| sink.flush());
        if wrote.is_err() {
            *io_errors
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
        }
    };

    let stats = Pool::new(config.workers).stream(
        || {
            if stopped {
                return None;
            }
            loop {
                let line = match lines.next() {
                    None => return None,
                    Some(Err(_)) => {
                        stopped = true;
                        return None;
                    }
                    Some(Ok(line)) => line,
                };
                if line.trim().is_empty() {
                    continue;
                }
                scnn_obs::counter_add("service.jobs", 1);
                let at = Instant::now();
                return Some(match JobSpec::parse_line(&line) {
                    Ok(spec) => {
                        if spec.is_shutdown() {
                            stopped = true;
                            *shutdown_flag = true;
                        }
                        Submission::Job(spec, at)
                    }
                    Err((id, error)) => Submission::Reject { id, error, at },
                });
            }
        },
        work,
        done,
    );

    let (ok, errors, rejected, cache) = tally
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut latencies = latencies
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    latencies.sort_by(f64::total_cmp);
    let io_errors = io_errors
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let elapsed_s = started.elapsed().as_secs_f64();
    ServiceReport {
        jobs: stats.submitted,
        ok,
        errors,
        rejected,
        shutdown,
        elapsed_s,
        jobs_per_sec: if elapsed_s > 0.0 {
            stats.completed as f64 / elapsed_s
        } else {
            f64::NAN
        },
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        max_queue_depth: stats.max_queue_depth,
        io_errors,
        cache,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn echo_executor(spec: &JobSpec) -> Result<JobOutput, String> {
        if spec.command == "boom" {
            panic!("kaboom");
        }
        if spec.command == "fail" {
            return Err("deliberate failure".into());
        }
        let mut traffic = CacheTraffic::default();
        traffic.add_usage(&CacheUsage {
            model_hit: spec.bool_param("warm")?,
            categories_hit: 2,
            categories_collected: 0,
            writes: 0,
        });
        Ok(JobOutput {
            stdout: format!("ran {} for {}\n", spec.command, spec.id),
            cache: Some(traffic),
        })
    }

    fn run(input: &str, workers: usize) -> (Vec<json::Value>, ServiceReport) {
        let mut out = Vec::new();
        let report = serve(
            Cursor::new(input.to_owned()),
            &mut out,
            &ServiceConfig {
                workers: Threads::Count(workers),
                include_stdout: true,
            },
            echo_executor,
        );
        let lines: Vec<json::Value> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| json::parse(l).expect("every response line is valid JSON"))
            .collect();
        (lines, report)
    }

    #[test]
    fn job_spec_parses_and_validates() {
        let spec =
            JobSpec::parse_line(r#"{"id":"a-1","command":"table1","samples":8,"quick":true}"#)
                .unwrap();
        assert_eq!(spec.id, "a-1");
        assert_eq!(spec.command, "table1");
        assert_eq!(spec.usize_param("samples").unwrap(), Some(8));
        assert!(spec.bool_param("quick").unwrap());
        assert_eq!(spec.usize_param("absent").unwrap(), None);
        assert!(spec.usize_param("quick").is_err(), "type mismatch surfaces");

        let spec = JobSpec::parse_line(
            r#"{"id":"x","command":"extract","profile_frac":0.6,"classifier":"knn:3"}"#,
        )
        .unwrap();
        assert_eq!(spec.f64_param("profile_frac").unwrap(), Some(0.6));
        assert_eq!(spec.str_param("classifier").unwrap(), Some("knn:3"));
        assert_eq!(spec.f64_param("absent").unwrap(), None);
        assert!(
            spec.f64_param("classifier").is_err(),
            "strings are not numbers"
        );

        assert!(JobSpec::parse_line("not json").is_err());
        assert!(
            JobSpec::parse_line(r#"{"command":"x"}"#).is_err(),
            "id required"
        );
        let (salvaged, _) = JobSpec::parse_line(r#"{"id":"ok"}"#).unwrap_err();
        assert_eq!(
            salvaged.as_deref(),
            Some("ok"),
            "id salvaged for correlation"
        );
        for bad in ["", ".hidden", "a/b", "x".repeat(65).as_str(), "sp ace"] {
            assert!(
                JobSpec::parse_line(&format!(r#"{{"id":{:?},"command":"c"}}"#, bad)).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn serve_answers_every_job_exactly_once_at_any_worker_count() {
        let input: String = (0..50)
            .map(|i| format!(r#"{{"id":"job-{i}","command":"run"}}"#) + "\n")
            .collect();
        for workers in [1, 4] {
            let (lines, report) = run(&input, workers);
            assert_eq!(report.jobs, 50, "workers={workers}");
            assert_eq!(report.ok, 50);
            assert_eq!(report.errors + report.rejected, 0);
            assert_eq!(lines.len(), 50, "one response per job");
            let mut ids: Vec<String> = lines
                .iter()
                .map(|l| l.get("id").unwrap().as_str().unwrap().to_owned())
                .collect();
            ids.sort();
            ids.dedup();
            assert_eq!(ids.len(), 50, "no duplicated responses");
            for line in &lines {
                assert_eq!(line.get("status").unwrap().as_str(), Some("ok"));
                let id = line.get("id").unwrap().as_str().unwrap();
                assert_eq!(
                    line.get("stdout").unwrap().as_str(),
                    Some(format!("ran run for {id}\n").as_str())
                );
                assert!(line.get("latency_ms").unwrap().as_f64().unwrap() >= 0.0);
            }
        }
    }

    #[test]
    fn single_worker_responses_preserve_submission_order() {
        let input = concat!(
            r#"{"id":"first","command":"run"}"#,
            "\n",
            r#"{"id":"second","command":"run"}"#,
            "\n",
            r#"{"id":"third","command":"run"}"#,
            "\n",
        );
        let (lines, _) = run(input, 1);
        let ids: Vec<&str> = lines
            .iter()
            .map(|l| l.get("id").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(ids, ["first", "second", "third"]);
    }

    #[test]
    fn executor_failures_and_panics_are_per_job_errors() {
        let input = concat!(
            r#"{"id":"good","command":"run"}"#,
            "\n",
            r#"{"id":"bad","command":"fail"}"#,
            "\n",
            r#"{"id":"ugly","command":"boom"}"#,
            "\n",
            r#"{"id":"after","command":"run"}"#,
            "\n",
        );
        let (lines, report) = run(input, 2);
        assert_eq!(report.jobs, 4);
        assert_eq!(report.ok, 2, "service survives failing jobs");
        assert_eq!(report.errors, 2);
        let status_of = |id: &str| {
            lines
                .iter()
                .find(|l| l.get("id").unwrap().as_str() == Some(id))
                .unwrap()
                .get("status")
                .unwrap()
                .as_str()
                .unwrap()
                .to_owned()
        };
        assert_eq!(status_of("good"), "ok");
        assert_eq!(status_of("bad"), "error");
        assert_eq!(
            status_of("ugly"),
            "error",
            "panic becomes an error response"
        );
        assert_eq!(status_of("after"), "ok");
        let ugly = lines
            .iter()
            .find(|l| l.get("id").unwrap().as_str() == Some("ugly"))
            .unwrap();
        assert!(
            ugly.get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("kaboom"),
            "panic message surfaces in the response"
        );
    }

    #[test]
    fn malformed_lines_are_rejected_not_fatal() {
        let input = concat!(
            "this is not json\n",
            "\n", // blank lines are skipped, not rejected
            r#"{"id":"x","command":"run"}"#,
            "\n",
            r#"{"id":"no command here"}"#,
            "\n",
        );
        let (lines, report) = run(input, 1);
        assert_eq!(report.jobs, 3, "blank line never counts");
        assert_eq!(report.ok, 1);
        assert_eq!(report.rejected, 2);
        assert_eq!(lines.len(), 3, "rejects still get responses");
        assert!(lines[0].get("id").unwrap().is_null(), "no id to correlate");
        assert_eq!(lines[0].get("status").unwrap().as_str(), Some("error"));
    }

    #[test]
    fn shutdown_command_stops_reading_and_still_responds() {
        let input = concat!(
            r#"{"id":"a","command":"run"}"#,
            "\n",
            r#"{"id":"bye","command":"shutdown"}"#,
            "\n",
            r#"{"id":"never","command":"run"}"#,
            "\n",
        );
        let (lines, report) = run(input, 4);
        assert!(report.shutdown);
        assert_eq!(report.jobs, 2, "nothing after shutdown is read");
        assert_eq!(lines.len(), 2);
        assert!(lines
            .iter()
            .any(|l| l.get("id").unwrap().as_str() == Some("bye")
                && l.get("status").unwrap().as_str() == Some("ok")));
        assert!(!lines
            .iter()
            .any(|l| l.get("id").unwrap().as_str() == Some("never")));
    }

    #[test]
    fn report_aggregates_cache_traffic_and_latencies() {
        let input = concat!(
            r#"{"id":"cold","command":"run"}"#,
            "\n",
            r#"{"id":"warm1","command":"run","warm":true}"#,
            "\n",
            r#"{"id":"warm2","command":"run","warm":true}"#,
            "\n",
        );
        let (_, report) = run(input, 2);
        assert_eq!(report.cache.model_hits, 2);
        assert_eq!(report.cache.model_misses, 1);
        assert_eq!(report.cache.categories_hit, 6);
        let rate = report.cache.hit_rate();
        assert!((rate - 8.0 / 9.0).abs() < 1e-12, "hit rate {rate}");
        assert!(report.p50_ms.is_finite() && report.p99_ms >= report.p50_ms);
        assert!(report.jobs_per_sec > 0.0);
        assert_eq!(report.io_errors, 0);
        // The report itself serializes through the in-tree writer.
        let parsed = json::parse(&report.to_json()).unwrap();
        assert_eq!(parsed.get("jobs").unwrap().as_f64(), Some(3.0));
        assert!(parsed
            .get("cache")
            .unwrap()
            .get("hit_rate")
            .unwrap()
            .as_f64()
            .is_some());
    }

    #[test]
    fn empty_hit_rate_is_null_in_json() {
        let traffic = CacheTraffic::default();
        assert!(traffic.hit_rate().is_nan());
        assert!(traffic.to_json().contains("\"hit_rate\":null"));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert!(percentile(&[], 50.0).is_nan());
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 99.0), 4.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
    }
}
