//! Countermeasures against HPC-based input recovery — the paper's
//! conclusion calls for "CNN architectures with indistinguishable CPU
//! footprints"; this module implements and evaluates concrete ways to get
//! there.

use crate::collect::TracedClassifier;
use scnn_nn::{Network, NnError};
use scnn_rng::{ChaCha8Rng, Rng, SeedableRng};
use scnn_tensor::Tensor;
use scnn_uarch::Probe;

/// A deployable countermeasure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Countermeasure {
    /// Replace every data-dependent kernel with its constant-footprint
    /// twin (no zero skipping, branchless ReLU/max) — removes the leak at
    /// its source, at the cost of computing over zeros.
    ConstantTime,
    /// Keep the fast kernels but execute random dummy memory/branch work
    /// alongside each classification, drowning the signal in noise.
    NoiseInjection {
        /// Mean dummy events per inference (loads + branches).
        dummy_events: u64,
    },
    /// Both of the above.
    Combined {
        /// Mean dummy events per inference.
        dummy_events: u64,
    },
}

impl Countermeasure {
    /// True when the network's kernels are switched to constant time.
    pub fn uses_constant_time(&self) -> bool {
        matches!(
            self,
            Countermeasure::ConstantTime | Countermeasure::Combined { .. }
        )
    }

    /// Mean dummy events injected per inference (0 when noise injection is
    /// off).
    pub fn dummy_events(&self) -> u64 {
        match *self {
            Countermeasure::NoiseInjection { dummy_events }
            | Countermeasure::Combined { dummy_events } => dummy_events,
            Countermeasure::ConstantTime => 0,
        }
    }
}

/// A network wrapped with a countermeasure, usable wherever a
/// [`TracedClassifier`] is expected (i.e. by
/// [`collect`](crate::collect::collect)).
///
/// Construction *mutates* the wrapped network's kernel styles when the
/// countermeasure demands it; [`ProtectedModel::into_inner`] restores the
/// leaky kernels.
pub struct ProtectedModel {
    net: Network,
    countermeasure: Countermeasure,
    rng: ChaCha8Rng,
    /// Scratch region the dummy loads walk over (64 KiB of f32s).
    dummy_len: usize,
}

impl std::fmt::Debug for ProtectedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProtectedModel")
            .field("countermeasure", &self.countermeasure)
            .field("net", &self.net)
            .finish_non_exhaustive()
    }
}

impl ProtectedModel {
    /// Wraps `net` with `countermeasure`; `seed` drives the dummy-work
    /// generator.
    pub fn new(mut net: Network, countermeasure: Countermeasure, seed: u64) -> Self {
        if countermeasure.uses_constant_time() {
            net.set_constant_time(true);
        }
        ProtectedModel {
            net,
            countermeasure,
            rng: ChaCha8Rng::seed_from_u64(seed),
            dummy_len: 16 * 1024,
        }
    }

    /// The active countermeasure.
    pub fn countermeasure(&self) -> Countermeasure {
        self.countermeasure
    }

    /// Read access to the wrapped network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Unwraps the network, restoring its leaky kernels.
    pub fn into_inner(mut self) -> Network {
        self.net.set_constant_time(false);
        self.net
    }

    fn inject_dummy_work(&mut self, probe: &mut dyn Probe) {
        let mean = self.countermeasure.dummy_events();
        if mean == 0 {
            return;
        }
        // Uniform in [mean/2, 3·mean/2]: the count itself is randomised so
        // it does not become a constant offset the t-test subtracts away.
        let n = self.rng.gen_range(mean / 2..=mean + mean / 2);
        // Dummy arena sits far from real segments.
        const DUMMY_BASE: u64 = 0x9000_0000;
        const DUMMY_PC: u64 = 0x00F0_0000;
        for _ in 0..n {
            let i = self.rng.gen_range(0..self.dummy_len as u64);
            probe.load(DUMMY_BASE + i * 4, DUMMY_PC);
            probe.branch(DUMMY_PC + 0x40, self.rng.gen::<bool>());
        }
        probe.alu(n);
    }
}

impl TracedClassifier for ProtectedModel {
    fn classify_traced(&mut self, image: &Tensor, probe: &mut dyn Probe) -> Result<usize, NnError> {
        let prediction = self.net.classify_traced(image, probe)?;
        self.inject_dummy_work(probe);
        Ok(prediction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scnn_nn::models;
    use scnn_uarch::CountingProbe;

    fn image(v: f32) -> Tensor {
        Tensor::full([1, 8, 8], v)
    }

    #[test]
    fn constant_time_preserves_predictions() {
        let mut plain = models::tiny_cnn(5);
        let mut protected =
            ProtectedModel::new(models::tiny_cnn(5), Countermeasure::ConstantTime, 1);
        for i in 0..5 {
            let img = image(0.1 * i as f32);
            let mut probe = CountingProbe::new();
            assert_eq!(
                protected.classify_traced(&img, &mut probe).unwrap(),
                plain.classify(&img).unwrap()
            );
        }
    }

    #[test]
    fn constant_time_footprint_is_input_independent() {
        let mut protected =
            ProtectedModel::new(models::tiny_cnn(5), Countermeasure::ConstantTime, 1);
        let counts = |p: &mut ProtectedModel, img: &Tensor| {
            let mut probe = CountingProbe::new();
            p.classify_traced(img, &mut probe).unwrap();
            (probe.loads, probe.stores, probe.branches)
        };
        let a = counts(&mut protected, &Tensor::zeros([1, 8, 8]));
        let b = counts(&mut protected, &image(0.7));
        assert_eq!(a, b, "constant-time kernels have shape-static footprints");
    }

    #[test]
    fn noise_injection_adds_random_work() {
        let mut protected = ProtectedModel::new(
            models::tiny_cnn(5),
            Countermeasure::NoiseInjection { dummy_events: 1000 },
            1,
        );
        let loads = |p: &mut ProtectedModel| {
            let mut probe = CountingProbe::new();
            p.classify_traced(&image(0.5), &mut probe).unwrap();
            probe.loads
        };
        let a = loads(&mut protected);
        let b = loads(&mut protected);
        assert_ne!(a, b, "dummy volume is randomised per inference");
        // Plain model for comparison.
        let plain = models::tiny_cnn(5);
        let mut probe = CountingProbe::new();
        plain.classify_traced(&image(0.5), &mut probe).unwrap();
        assert!(
            a > probe.loads + 400,
            "dummy loads visible: {a} vs {}",
            probe.loads
        );
    }

    #[test]
    fn into_inner_restores_leaky_kernels() {
        let protected = ProtectedModel::new(models::tiny_cnn(5), Countermeasure::ConstantTime, 1);
        let net = protected.into_inner();
        // Leaky again: zero vs dense inputs give different footprints.
        let counts = |img: &Tensor| {
            let mut probe = CountingProbe::new();
            net.classify_traced(img, &mut probe).unwrap();
            probe.loads
        };
        assert_ne!(counts(&Tensor::zeros([1, 8, 8])), counts(&image(0.9)));
    }

    #[test]
    fn accessors() {
        let cm = Countermeasure::Combined { dummy_events: 10 };
        assert!(cm.uses_constant_time());
        assert_eq!(cm.dummy_events(), 10);
        assert!(!Countermeasure::NoiseInjection { dummy_events: 5 }.uses_constant_time());
        assert_eq!(Countermeasure::ConstantTime.dummy_events(), 0);
        let p = ProtectedModel::new(models::tiny_cnn(1), cm, 9);
        assert_eq!(p.countermeasure(), cm);
        assert!(!p.network().is_empty());
    }
}
