//! Countermeasures against HPC-based input recovery — the paper's
//! conclusion calls for "CNN architectures with indistinguishable CPU
//! footprints"; this module implements and evaluates concrete ways to get
//! there.
//!
//! The suite covers the defence families of the Mohammadi et al. survey
//! (see PAPERS.md): constant-footprint kernels, blinding noise (fixed and
//! calibrated volume), memory-access shuffling, decoy inferences and
//! oblivious constant-shape execution. `frontier::run_frontier` maps
//! their leakage-vs-overhead trade-off.

use crate::collect::TracedClassifier;
use scnn_nn::{Network, NnError};
use scnn_rng::{ChaCha8Rng, Rng, SeedableRng};
use scnn_tensor::Tensor;
use scnn_uarch::Probe;

/// A deployable countermeasure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Countermeasure {
    /// Replace every data-dependent kernel with its constant-footprint
    /// twin (no zero skipping, branchless ReLU/max) — removes the leak at
    /// its source, at the cost of computing over zeros.
    ConstantTime,
    /// Keep the fast kernels but execute random dummy memory/branch work
    /// alongside each classification, drowning the signal in noise.
    NoiseInjection {
        /// Mean dummy events per inference (loads + branches).
        dummy_events: u64,
    },
    /// Constant-time kernels *and* noise injection.
    Combined {
        /// Mean dummy events per inference.
        dummy_events: u64,
    },
    /// Memory-access shuffling: every inference re-seeds a permutation of
    /// the neuron/channel visit order inside the traced dense/conv
    /// kernels, so the probe sees a scrambled access stream while the
    /// numbers stay bit-identical. Event *counts* are order-invariant, so
    /// this defends address-trace adversaries, not count-based HPCs — the
    /// frontier quantifies exactly that gap.
    Shuffle,
    /// Whole decoy classifications on synthetic inputs around the real
    /// one: the probe's window mixes `decoys` dummy inferences (at a
    /// random position among them) with the real one.
    DecoyInference {
        /// Dummy classifications per real inference.
        decoys: u64,
    },
    /// Oblivious constant-shape execution: constant-time kernels, plus
    /// every per-layer window padded up to the network's maximum layer
    /// footprint — all categories *and all layers* share one trace shape,
    /// blinding both the t-test evaluator and the per-layer extraction
    /// adversary.
    ObliviousShape,
    /// Noise injection whose dummy volume was iterated (doubled) until
    /// the evaluator's max |t| on a calibration run fell below
    /// `target_t` — the data-driven replacement for a hard-coded budget.
    /// `dummy_events` holds the calibrated volume
    /// (see `frontier::calibrate_noise`).
    CalibratedNoise {
        /// The |t| ceiling calibration drives toward.
        target_t: f64,
        /// The calibrated mean dummy events per inference.
        dummy_events: u64,
    },
}

impl Countermeasure {
    /// True when the network's kernels are switched to constant time.
    pub fn uses_constant_time(&self) -> bool {
        matches!(
            self,
            Countermeasure::ConstantTime
                | Countermeasure::Combined { .. }
                | Countermeasure::ObliviousShape
        )
    }

    /// True when the traced kernels shuffle their memory-access order.
    pub fn uses_shuffle(&self) -> bool {
        matches!(self, Countermeasure::Shuffle)
    }

    /// Mean dummy events injected per inference (0 when noise injection is
    /// off).
    pub fn dummy_events(&self) -> u64 {
        match *self {
            Countermeasure::NoiseInjection { dummy_events }
            | Countermeasure::Combined { dummy_events }
            | Countermeasure::CalibratedNoise { dummy_events, .. } => dummy_events,
            Countermeasure::ConstantTime
            | Countermeasure::Shuffle
            | Countermeasure::DecoyInference { .. }
            | Countermeasure::ObliviousShape => 0,
        }
    }

    /// Decoy classifications per real inference (0 for every other
    /// countermeasure).
    pub fn decoys(&self) -> u64 {
        match *self {
            Countermeasure::DecoyInference { decoys } => decoys,
            _ => 0,
        }
    }
}

/// Primitive-event counts of one per-layer trace window — the "shape"
/// oblivious execution equalises.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ShapeCounts {
    loads: u64,
    stores: u64,
    branches: u64,
    alu: u64,
}

impl ShapeCounts {
    fn max(self, other: ShapeCounts) -> ShapeCounts {
        ShapeCounts {
            loads: self.loads.max(other.loads),
            stores: self.stores.max(other.stores),
            branches: self.branches.max(other.branches),
            alu: self.alu.max(other.alu),
        }
    }
}

/// Measures per-layer-window primitive-event counts without forwarding
/// anything — the silent pre-pass that sizes the oblivious ceiling.
#[derive(Default)]
struct WindowCounter {
    windows: Vec<ShapeCounts>,
    current: ShapeCounts,
}

impl WindowCounter {
    /// Closes the trailing window and returns all windows; index 0 is the
    /// pre-layer staging window.
    fn finish(mut self) -> Vec<ShapeCounts> {
        self.windows.push(self.current);
        self.windows
    }
}

impl Probe for WindowCounter {
    fn load(&mut self, _addr: u64, _pc: u64) {
        self.current.loads += 1;
    }

    fn store(&mut self, _addr: u64, _pc: u64) {
        self.current.stores += 1;
    }

    fn branch(&mut self, _pc: u64, _taken: bool) {
        self.current.branches += 1;
    }

    fn alu(&mut self, n: u64) {
        self.current.alu += n;
    }

    fn layer_boundary(&mut self, _index: usize) {
        self.windows.push(self.current);
        self.current = ShapeCounts::default();
    }
}

/// Pads every layer window up to a fixed ceiling of primitive events
/// before forwarding the next boundary, so all layers present one trace
/// shape to whatever probe sits underneath.
struct PaddingProbe<'p> {
    inner: &'p mut dyn Probe,
    ceiling: ShapeCounts,
    current: ShapeCounts,
    /// False until the first layer boundary: the staging window (input
    /// copy-in) is input-size-static already and stays unpadded.
    in_layer: bool,
    /// Walk cursor over the padding arena, persisted across windows so
    /// pad loads stream sequentially like real accesses.
    cursor: u64,
}

/// The padding arena sits far from every real segment.
const PAD_BASE: u64 = 0xA000_0000;
const PAD_PC: u64 = 0x00F4_0000;
/// f32 entries in the padding arena (64 KiB).
const PAD_ARENA: u64 = 16 * 1024;

impl<'p> PaddingProbe<'p> {
    fn new(inner: &'p mut dyn Probe, ceiling: ShapeCounts) -> PaddingProbe<'p> {
        PaddingProbe {
            inner,
            ceiling,
            current: ShapeCounts::default(),
            in_layer: false,
            cursor: 0,
        }
    }

    /// Tops the current window up to the ceiling. Windows larger than the
    /// ceiling (impossible when the ceiling came from the same network)
    /// are left as-is.
    fn pad(&mut self) {
        for _ in self.current.loads..self.ceiling.loads {
            let i = self.cursor % PAD_ARENA;
            self.cursor += 1;
            self.inner.load(PAD_BASE + i * 4, PAD_PC);
        }
        for _ in self.current.stores..self.ceiling.stores {
            let i = self.cursor % PAD_ARENA;
            self.cursor += 1;
            self.inner.store(PAD_BASE + i * 4, PAD_PC);
        }
        for _ in self.current.branches..self.ceiling.branches {
            self.inner.branch(PAD_PC + 0x40, false);
        }
        if self.current.alu < self.ceiling.alu {
            self.inner.alu(self.ceiling.alu - self.current.alu);
        }
        self.current = ShapeCounts::default();
    }

    /// Pads the final (still-open) layer window; call after the workload
    /// returns, since no trailing boundary closes it.
    fn flush(&mut self) {
        if self.in_layer {
            self.pad();
        }
    }
}

impl Probe for PaddingProbe<'_> {
    fn load(&mut self, addr: u64, pc: u64) {
        self.current.loads += 1;
        self.inner.load(addr, pc);
    }

    fn store(&mut self, addr: u64, pc: u64) {
        self.current.stores += 1;
        self.inner.store(addr, pc);
    }

    fn branch(&mut self, pc: u64, taken: bool) {
        self.current.branches += 1;
        self.inner.branch(pc, taken);
    }

    fn alu(&mut self, n: u64) {
        self.current.alu += n;
        self.inner.alu(n);
    }

    fn layer_boundary(&mut self, index: usize) {
        if self.in_layer {
            self.pad();
        } else {
            self.in_layer = true;
            self.current = ShapeCounts::default();
        }
        self.inner.layer_boundary(index);
    }
}

/// A network wrapped with a countermeasure, usable wherever a
/// [`TracedClassifier`] is expected (i.e. by
/// [`collect`](crate::collect::collect)).
///
/// Construction *mutates* the wrapped network's kernel styles when the
/// countermeasure demands it; [`ProtectedModel::into_inner`] restores the
/// leaky kernels.
pub struct ProtectedModel {
    net: Network,
    countermeasure: Countermeasure,
    rng: ChaCha8Rng,
    /// Scratch region the dummy loads walk over (64 KiB of f32s).
    dummy_len: usize,
    /// Lazily measured per-layer padding ceiling (oblivious shape only);
    /// input-independent because the kernels are constant-time.
    ceiling: Option<ShapeCounts>,
}

impl std::fmt::Debug for ProtectedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProtectedModel")
            .field("countermeasure", &self.countermeasure)
            .field("net", &self.net)
            .finish_non_exhaustive()
    }
}

impl ProtectedModel {
    /// Wraps `net` with `countermeasure`; `seed` drives the dummy-work,
    /// shuffle and decoy generators.
    pub fn new(mut net: Network, countermeasure: Countermeasure, seed: u64) -> Self {
        if countermeasure.uses_constant_time() {
            net.set_constant_time(true);
        }
        ProtectedModel {
            net,
            countermeasure,
            rng: ChaCha8Rng::seed_from_u64(seed),
            dummy_len: 16 * 1024,
            ceiling: None,
        }
    }

    /// The active countermeasure.
    pub fn countermeasure(&self) -> Countermeasure {
        self.countermeasure
    }

    /// Read access to the wrapped network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Unwraps the network, restoring its leaky kernels and ordered
    /// access streams.
    pub fn into_inner(mut self) -> Network {
        self.net.set_constant_time(false);
        self.net.set_shuffle(None);
        self.net
    }

    fn inject_dummy_work(&mut self, probe: &mut dyn Probe) {
        let mean = self.countermeasure.dummy_events();
        if mean == 0 {
            return;
        }
        // Uniform in [mean − ⌊mean/2⌋, mean + ⌊mean/2⌋]: symmetric around
        // the mean (so the configured budget is what the t-test sees on
        // average, odd means included) and never zero — the count itself
        // is randomised so it does not become a constant offset the
        // t-test subtracts away, but some dummy work always runs.
        let half = mean / 2;
        let n = self.rng.gen_range((mean - half).max(1)..=mean + half);
        // Dummy arena sits far from real segments.
        const DUMMY_BASE: u64 = 0x9000_0000;
        const DUMMY_PC: u64 = 0x00F0_0000;
        for _ in 0..n {
            let i = self.rng.gen_range(0..self.dummy_len as u64);
            probe.load(DUMMY_BASE + i * 4, DUMMY_PC);
            probe.branch(DUMMY_PC + 0x40, self.rng.gen::<bool>());
        }
        probe.alu(n);
    }

    /// A synthetic decoy input shaped like `like`: roughly half the
    /// pixels are zero (so decoys exercise the zero-skip paths the way
    /// real inputs do), the rest uniform in (0, 1).
    fn synthetic_input(&mut self, like: &Tensor) -> Tensor {
        let data: Vec<f32> = (0..like.len())
            .map(|_| {
                if self.rng.gen::<bool>() {
                    0.0
                } else {
                    self.rng.gen_range(0.0f32..1.0)
                }
            })
            .collect();
        Tensor::from_vec(data, like.shape().clone())
            .expect("decoy shares the shape of a valid input")
    }

    /// The per-layer padding ceiling for oblivious execution: the
    /// element-wise max of every layer window's primitive counts,
    /// measured once by a silent pre-pass (input-independent under
    /// constant-time kernels).
    fn oblivious_ceiling(&mut self, image: &Tensor) -> Result<ShapeCounts, NnError> {
        if let Some(c) = self.ceiling {
            return Ok(c);
        }
        let mut counter = WindowCounter::default();
        self.net.classify_traced(image, &mut counter)?;
        let windows = counter.finish();
        let ceiling = windows
            .iter()
            .skip(1) // staging window stays unpadded
            .fold(ShapeCounts::default(), |acc, &w| acc.max(w));
        self.ceiling = Some(ceiling);
        Ok(ceiling)
    }
}

impl TracedClassifier for ProtectedModel {
    fn classify_traced(&mut self, image: &Tensor, probe: &mut dyn Probe) -> Result<usize, NnError> {
        match self.countermeasure {
            Countermeasure::Shuffle => {
                // A fresh permutation per inference: no two traces share
                // an access order.
                let seed = self.rng.gen::<u64>();
                self.net.set_shuffle(Some(seed));
                self.net.classify_traced(image, probe)
            }
            Countermeasure::DecoyInference { decoys } => {
                let position = self.rng.gen_range(0..=decoys);
                let mut prediction = None;
                for slot in 0..=decoys {
                    if slot == position {
                        prediction = Some(self.net.classify_traced(image, probe)?);
                    } else {
                        let decoy = self.synthetic_input(image);
                        let _ = self.net.classify_traced(&decoy, probe)?;
                    }
                }
                Ok(prediction.expect("the real inference always runs"))
            }
            Countermeasure::ObliviousShape => {
                let ceiling = self.oblivious_ceiling(image)?;
                let mut pad = PaddingProbe::new(probe, ceiling);
                let prediction = self.net.classify_traced(image, &mut pad)?;
                pad.flush();
                Ok(prediction)
            }
            _ => {
                let prediction = self.net.classify_traced(image, probe)?;
                self.inject_dummy_work(probe);
                Ok(prediction)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scnn_nn::models;
    use scnn_uarch::CountingProbe;

    fn image(v: f32) -> Tensor {
        Tensor::full([1, 8, 8], v)
    }

    #[test]
    fn constant_time_preserves_predictions() {
        let mut plain = models::tiny_cnn(5);
        let mut protected =
            ProtectedModel::new(models::tiny_cnn(5), Countermeasure::ConstantTime, 1);
        for i in 0..5 {
            let img = image(0.1 * i as f32);
            let mut probe = CountingProbe::new();
            assert_eq!(
                protected.classify_traced(&img, &mut probe).unwrap(),
                plain.classify(&img).unwrap()
            );
        }
    }

    #[test]
    fn constant_time_footprint_is_input_independent() {
        let mut protected =
            ProtectedModel::new(models::tiny_cnn(5), Countermeasure::ConstantTime, 1);
        let counts = |p: &mut ProtectedModel, img: &Tensor| {
            let mut probe = CountingProbe::new();
            p.classify_traced(img, &mut probe).unwrap();
            (probe.loads, probe.stores, probe.branches)
        };
        let a = counts(&mut protected, &Tensor::zeros([1, 8, 8]));
        let b = counts(&mut protected, &image(0.7));
        assert_eq!(a, b, "constant-time kernels have shape-static footprints");
    }

    #[test]
    fn noise_injection_adds_random_work() {
        let mut protected = ProtectedModel::new(
            models::tiny_cnn(5),
            Countermeasure::NoiseInjection { dummy_events: 1000 },
            1,
        );
        let loads = |p: &mut ProtectedModel| {
            let mut probe = CountingProbe::new();
            p.classify_traced(&image(0.5), &mut probe).unwrap();
            probe.loads
        };
        let a = loads(&mut protected);
        let b = loads(&mut protected);
        assert_ne!(a, b, "dummy volume is randomised per inference");
        // Plain model for comparison.
        let plain = models::tiny_cnn(5);
        let mut probe = CountingProbe::new();
        plain.classify_traced(&image(0.5), &mut probe).unwrap();
        assert!(
            a > probe.loads + 400,
            "dummy loads visible: {a} vs {}",
            probe.loads
        );
    }

    #[test]
    fn dummy_work_is_mean_preserving_and_never_empty() {
        // Regression: gen_range(mean/2..=mean+mean/2) could draw n = 0
        // for mean == 1 (injecting nothing) and biased odd means low.
        let plain_loads = {
            let plain = models::tiny_cnn(3);
            let mut probe = CountingProbe::new();
            plain.classify_traced(&image(0.5), &mut probe).unwrap();
            probe.loads
        };
        for mean in [1u64, 2, 3, 5, 9] {
            let mut protected = ProtectedModel::new(
                models::tiny_cnn(3),
                Countermeasure::NoiseInjection { dummy_events: mean },
                0xD0,
            );
            let rounds = 400;
            let mut total = 0u64;
            for _ in 0..rounds {
                let mut probe = CountingProbe::new();
                protected.classify_traced(&image(0.5), &mut probe).unwrap();
                let n = probe.loads - plain_loads;
                assert!(n >= 1, "mean {mean}: an inference injected no dummy work");
                assert!(n <= mean + mean / 2, "mean {mean}: drew {n} above range");
                total += n;
            }
            let avg = total as f64 / rounds as f64;
            assert!(
                (avg - mean as f64).abs() < 0.2 + mean as f64 * 0.05,
                "mean {mean}: empirical average {avg} off target"
            );
        }
    }

    #[test]
    fn shuffle_preserves_predictions_and_permutes_traces() {
        #[derive(Default)]
        struct AddrProbe {
            addrs: Vec<u64>,
        }
        impl Probe for AddrProbe {
            fn load(&mut self, addr: u64, _pc: u64) {
                self.addrs.push(addr);
            }
        }
        let mut plain = models::tiny_cnn(5);
        let mut protected = ProtectedModel::new(models::tiny_cnn(5), Countermeasure::Shuffle, 2);
        let img = image(0.4);
        let mut first = AddrProbe::default();
        let mut second = AddrProbe::default();
        let p1 = protected.classify_traced(&img, &mut first).unwrap();
        let p2 = protected.classify_traced(&img, &mut second).unwrap();
        assert_eq!(p1, plain.classify(&img).unwrap());
        assert_eq!(p2, p1, "shuffling never changes the numbers");
        assert_eq!(
            first.addrs.len(),
            second.addrs.len(),
            "shuffling permutes the stream, it adds nothing"
        );
        assert_ne!(
            first.addrs, second.addrs,
            "each inference draws a fresh permutation"
        );
    }

    #[test]
    fn decoy_inference_multiplies_work_and_keeps_the_prediction() {
        let mut plain = models::tiny_cnn(5);
        let mut protected = ProtectedModel::new(
            models::tiny_cnn(5),
            Countermeasure::DecoyInference { decoys: 2 },
            3,
        );
        let img = image(0.6);
        let plain_loads = {
            let mut probe = CountingProbe::new();
            plain.classify_traced(&img, &mut probe).unwrap();
            probe.loads
        };
        let mut probe = CountingProbe::new();
        let prediction = protected.classify_traced(&img, &mut probe).unwrap();
        assert_eq!(prediction, plain.classify(&img).unwrap());
        assert!(
            probe.loads > 2 * plain_loads,
            "2 decoys roughly triple the trace: {} vs {plain_loads}",
            probe.loads
        );
    }

    #[test]
    fn oblivious_shape_equalises_layer_windows() {
        let mut protected =
            ProtectedModel::new(models::tiny_cnn(5), Countermeasure::ObliviousShape, 4);
        let windows_of = |p: &mut ProtectedModel, img: &Tensor| {
            let mut counter = WindowCounter::default();
            p.classify_traced(img, &mut counter).unwrap();
            counter.finish()
        };
        let windows = windows_of(&mut protected, &image(0.3));
        // Skip the staging window; every layer window shares one shape.
        let layers = &windows[1..];
        assert!(layers.len() > 1, "tiny CNN has several layers");
        for w in layers {
            assert_eq!(w, &layers[0], "all layer windows share one shape");
        }
        // And the shape is input-independent (whole-trace totals too).
        let other = windows_of(&mut protected, &Tensor::zeros([1, 8, 8]));
        assert_eq!(windows, other);
    }

    #[test]
    fn into_inner_restores_leaky_kernels() {
        let protected = ProtectedModel::new(models::tiny_cnn(5), Countermeasure::ConstantTime, 1);
        let net = protected.into_inner();
        // Leaky again: zero vs dense inputs give different footprints.
        let counts = |img: &Tensor| {
            let mut probe = CountingProbe::new();
            net.classify_traced(img, &mut probe).unwrap();
            probe.loads
        };
        assert_ne!(counts(&Tensor::zeros([1, 8, 8])), counts(&image(0.9)));
    }

    #[test]
    fn accessors() {
        let cm = Countermeasure::Combined { dummy_events: 10 };
        assert!(cm.uses_constant_time());
        assert_eq!(cm.dummy_events(), 10);
        assert!(!Countermeasure::NoiseInjection { dummy_events: 5 }.uses_constant_time());
        assert_eq!(Countermeasure::ConstantTime.dummy_events(), 0);
        assert!(Countermeasure::Shuffle.uses_shuffle());
        assert!(!Countermeasure::Shuffle.uses_constant_time());
        assert!(Countermeasure::ObliviousShape.uses_constant_time());
        assert_eq!(Countermeasure::DecoyInference { decoys: 4 }.decoys(), 4);
        assert_eq!(Countermeasure::ConstantTime.decoys(), 0);
        let calibrated = Countermeasure::CalibratedNoise {
            target_t: 1.5,
            dummy_events: 4096,
        };
        assert_eq!(calibrated.dummy_events(), 4096);
        assert!(!calibrated.uses_constant_time());
        let p = ProtectedModel::new(models::tiny_cnn(1), cm, 9);
        assert_eq!(p.countermeasure(), cm);
        assert!(!p.network().is_empty());
    }
}
