//! Architecture-extraction adversary — reverse engineering the *model*
//! instead of the *input*.
//!
//! The paper's evaluator asks whether HPC footprints leak which input a
//! CNN classified. This module asks the stronger reverse-engineering
//! question its title implies: can an adversary who samples per-layer
//! counter windows reconstruct the **architecture** — depth, layer
//! kinds, dimensions, activation flavour — of a victim network it has
//! never seen?
//!
//! The attack rests on the window protocol of
//! [`SimulatedPmu::measure_layers`]: every traced inference reports a
//! boundary at each layer entry, so one inference yields one counter
//! window per layer. Each traced kernel's footprint is an exact
//! arithmetic function of its dimensions (DESIGN.md §15), and those
//! functions are *invertible*:
//!
//! - **dense** (`in → out`, `nnz` non-zero activations):
//!   `loads = out + in + 2·nnz·out`, `stores = out + nnz·out`, so
//!   `in = loads + out − 2·stores` and `nnz = (stores − out)/out`; a
//!   1-D search over `out` checks the branch/ALU predictions.
//! - **conv** (`C·H·W` input, `out_len` outputs, `M` contributions,
//!   `F` filters): `out_len = alu − loads`,
//!   `CHW = (branches − out_len − 2)/2`, `M = (loads − CHW)/2`,
//!   `F = 2M/(stores − out_len − M)` — a closed-form inversion.
//! - **pool**: `loads/stores = k²`; **relu**: `loads ≈ stores` with the
//!   branch rate telling branchy from branchless; **flatten** retires
//!   nothing.
//!
//! Medians across samples (not means) make the features robust to the
//! simulator's rare interrupt spikes. The [`Extractor`] implements the
//! same [`Adversary`] contract as the input-recovery
//! [`ClassifierAdversary`](crate::attack::ClassifierAdversary):
//! `profile` a corpus, `attack` unseen traces, `report` the result.
//!
//! [`run_extract`] is the campaign driver behind `repro extract`: it
//! measures the victim unprotected and under each
//! [`Countermeasure`], scores every hypothesis against the true layer
//! stack, and tabulates how recovery accuracy degrades — the
//! architecture-extraction analogue of the paper's Table 2 ablation.
//!
//! [`SimulatedPmu::measure_layers`]: scnn_hpc::SimulatedPmu::measure_layers

use crate::artifact;
use crate::attack::{Adversary, AttackError};
use crate::collect::{category_seed, TracedClassifier};
use crate::countermeasure::{Countermeasure, ProtectedModel};
use crate::error::Error;
use crate::json::{ObjectWriter, ToJson};
use crate::pipeline::ExperimentConfig;
use scnn_cache::ArtifactCache;
use scnn_data::Dataset;
use scnn_hpc::SimulatedPmu;
use scnn_nn::spec::LayerSpec;
use scnn_nn::train::{accuracy, train};
use scnn_nn::{Network, ReluStyle};
use scnn_par::{Pool, Threads};
use scnn_tensor::Shape;
use scnn_uarch::CounterSnapshot;

/// The four architectural counters one layer window is reduced to.
///
/// ALU work is derived, not measured directly: the simulated core
/// retires exactly `loads + stores + branches + alu` instructions, so
/// the residue of the instruction counter is the ALU stream.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LayerWindow {
    /// Retired loads in the window.
    pub loads: f64,
    /// Retired stores in the window.
    pub stores: f64,
    /// Retired branches in the window.
    pub branches: f64,
    /// Retired ALU instructions (instructions minus the other three).
    pub alu: f64,
}

impl LayerWindow {
    /// Reduces one raw counter window to its architectural features.
    pub fn from_snapshot(snap: &CounterSnapshot) -> LayerWindow {
        let mem = snap.loads + snap.stores + snap.branches;
        LayerWindow {
            loads: snap.loads as f64,
            stores: snap.stores as f64,
            branches: snap.branches as f64,
            alu: snap.instructions.saturating_sub(mem) as f64,
        }
    }

    fn total(&self) -> f64 {
        self.loads + self.stores + self.branches + self.alu
    }
}

/// One traced inference: the per-layer counter windows of a single
/// classification (the pre-layer input-staging window already stripped).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InferenceTrace {
    /// Window `i` covers layer `i` of the victim.
    pub windows: Vec<LayerWindow>,
}

/// A corpus of traced inferences of one victim under one measurement
/// environment — the extraction adversary's profiling material.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceCorpus {
    /// The traces, in collection order.
    pub traces: Vec<InferenceTrace>,
}

impl TraceCorpus {
    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True when the corpus holds no traces.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// The corpus restricted to its first `n` traces.
    pub fn prefix(&self, n: usize) -> TraceCorpus {
        TraceCorpus {
            traces: self.traces[..n.min(self.traces.len())].to_vec(),
        }
    }

    /// Per-layer median windows across the corpus.
    ///
    /// The depth is the *modal* window count (ties break toward the
    /// shallower depth), so a stray truncated trace cannot change the
    /// recovered architecture; medians (not means) null the simulator's
    /// rare interrupt spikes.
    pub fn median_windows(&self) -> Vec<LayerWindow> {
        let mut counts: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        for t in &self.traces {
            *counts.entry(t.windows.len()).or_insert(0) += 1;
        }
        let depth = counts
            .iter()
            .max_by_key(|(_, &c)| c)
            .map(|(&len, _)| len)
            .unwrap_or(0);
        let mut out = Vec::with_capacity(depth);
        for w in 0..depth {
            let mut loads = Vec::new();
            let mut stores = Vec::new();
            let mut branches = Vec::new();
            let mut alu = Vec::new();
            for t in self.traces.iter().filter(|t| t.windows.len() == depth) {
                loads.push(t.windows[w].loads);
                stores.push(t.windows[w].stores);
                branches.push(t.windows[w].branches);
                alu.push(t.windows[w].alu);
            }
            out.push(LayerWindow {
                loads: median(&mut loads),
                stores: median(&mut stores),
                branches: median(&mut branches),
                alu: median(&mut alu),
            });
        }
        out
    }
}

fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// The layer families the extractor can recognise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv,
    /// ReLU activation.
    Relu,
    /// Max pooling.
    Pool,
    /// Flatten (retires nothing).
    Flatten,
    /// Fully-connected layer.
    Dense,
    /// Softmax.
    Softmax,
    /// No kernel signature matched.
    Unknown,
}

impl LayerKind {
    /// Lower-case slug for tables and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            LayerKind::Conv => "conv",
            LayerKind::Relu => "relu",
            LayerKind::Pool => "pool",
            LayerKind::Flatten => "flatten",
            LayerKind::Dense => "dense",
            LayerKind::Softmax => "softmax",
            LayerKind::Unknown => "unknown",
        }
    }
}

/// The extractor's reconstruction of one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerHypothesis {
    /// Recovered layer family.
    pub kind: LayerKind,
    /// Recovered output size (0 when the kind carries no dimension).
    pub dim: usize,
    /// Recovered input size, when the kernel's inversion yields one.
    pub fan_in: Option<usize>,
    /// Recovered filter count (conv only).
    pub filters: Option<usize>,
    /// Branchy (`true`) vs branchless (`false`) activation (relu only).
    pub branchy: Option<bool>,
    /// Recovered pooling window (pool only).
    pub pool_k: Option<usize>,
}

impl LayerHypothesis {
    fn bare(kind: LayerKind, dim: usize) -> LayerHypothesis {
        LayerHypothesis {
            kind,
            dim,
            fan_in: None,
            filters: None,
            branchy: None,
            pool_k: None,
        }
    }
}

impl ToJson for LayerHypothesis {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("kind", self.kind.name())
            .field("dim", &self.dim)
            .field("fan_in", &self.fan_in)
            .field("filters", &self.filters)
            .field("branchy", &self.branchy)
            .field("pool_k", &self.pool_k);
        obj.finish();
    }
}

/// The extractor's reconstruction of the whole victim.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ArchitectureHypothesis {
    /// One hypothesis per recovered layer, input to output.
    pub layers: Vec<LayerHypothesis>,
}

impl ArchitectureHypothesis {
    /// Recovered depth.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// The recovered layer-kind sequence.
    pub fn kinds(&self) -> Vec<LayerKind> {
        self.layers.iter().map(|l| l.kind).collect()
    }

    /// One-line rendering, e.g. `conv[400] → relu[400] → pool[100]`.
    pub fn render(&self) -> String {
        let parts: Vec<String> = self
            .layers
            .iter()
            .map(|l| {
                if l.dim > 0 {
                    format!("{}[{}]", l.kind.name(), l.dim)
                } else {
                    l.kind.name().to_owned()
                }
            })
            .collect();
        parts.join(" → ")
    }
}

impl ToJson for ArchitectureHypothesis {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("depth", &self.depth())
            .field("layers", &self.layers);
        obj.finish();
    }
}

/// Ground truth for one victim layer, read off the real
/// [`LayerSpec`] stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerTruth {
    /// True layer family.
    pub kind: LayerKind,
    /// True output size (elements).
    pub dim: usize,
    /// True activation flavour (relu only).
    pub branchy: Option<bool>,
    /// True pooling window (pool only).
    pub pool_k: Option<usize>,
}

impl ToJson for LayerTruth {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("kind", self.kind.name())
            .field("dim", &self.dim)
            .field("branchy", &self.branchy)
            .field("pool_k", &self.pool_k);
        obj.finish();
    }
}

/// Reads the true architecture off a live network: per layer, the kind,
/// the output element count for an `input`-shaped image, and the
/// leak-relevant styles.
///
/// # Errors
///
/// Returns [`Error::Nn`] when `input` is incompatible with the network.
pub fn ground_truth(net: &Network, input: &Shape) -> Result<Vec<LayerTruth>, Error> {
    let mut shape = input.clone();
    let mut out = Vec::with_capacity(net.layers().len());
    for layer in net.layers() {
        shape = layer.output_shape(&shape)?;
        let (kind, branchy, pool_k) = match layer.spec() {
            LayerSpec::Conv2d { .. } => (LayerKind::Conv, None, None),
            LayerSpec::Relu { style, .. } => {
                (LayerKind::Relu, Some(style == ReluStyle::Branchy), None)
            }
            LayerSpec::MaxPool2d { k } => (LayerKind::Pool, None, Some(k)),
            LayerSpec::Flatten => (LayerKind::Flatten, None, None),
            LayerSpec::Dense { .. } => (LayerKind::Dense, None, None),
            LayerSpec::Softmax => (LayerKind::Softmax, None, None),
        };
        out.push(LayerTruth {
            kind,
            dim: shape.len(),
            branchy,
            pool_k,
        });
    }
    Ok(out)
}

/// Worst residual (relative branch + ALU misprediction) a dense/conv
/// fit may carry and still name the kind. Noise-free windows fit below
/// 1%; the threshold only has to reject kernels that are *not* the
/// fitted kind, whose residuals sit near 1.
const MAX_FIT_RESIDUAL: f64 = 0.5;

#[derive(Debug, Clone, Copy)]
struct DenseFit {
    input: usize,
    output: usize,
    residual: f64,
}

/// Inverts the dense kernel's footprint. `loads` and `stores` pin
/// `(in, nnz)` for every candidate `out`; the candidate whose predicted
/// branch and ALU counts match best wins.
fn fit_dense(w: &LayerWindow) -> Option<DenseFit> {
    if w.stores < 2.0 {
        return None;
    }
    let max_out = (w.stores.min(65_536.0)) as usize;
    let mut best: Option<DenseFit> = None;
    for out in 1..=max_out {
        let outf = out as f64;
        let input = w.loads + outf - 2.0 * w.stores;
        if input < 0.5 {
            continue;
        }
        let nnz = (w.stores - outf) / outf;
        if nnz < -0.01 {
            continue;
        }
        let lanes = out.div_ceil(8) as f64;
        let b_pred = outf + 2.0 * input + 2.0 + nnz * (lanes + 1.0);
        let a_pred = outf + input + nnz * (2.0 * outf + lanes);
        let residual = (w.branches - b_pred).abs() / w.branches.max(1.0)
            + (w.alu - a_pred).abs() / w.alu.max(1.0);
        if best.is_none_or(|f| residual < f.residual) {
            best = Some(DenseFit {
                input: input.round() as usize,
                output: out,
                residual,
            });
        }
    }
    best
}

#[derive(Debug, Clone, Copy)]
struct ConvFit {
    output: usize,
    input: usize,
    filters: usize,
    residual: f64,
}

/// Inverts the conv kernel's footprint in closed form; `None` when any
/// intermediate goes non-positive (dense windows do, reliably).
fn fit_conv(w: &LayerWindow) -> Option<ConvFit> {
    let out_len = w.alu - w.loads;
    if out_len < 0.5 {
        return None;
    }
    let chw = (w.branches - out_len - 2.0) / 2.0;
    if chw < 0.5 {
        return None;
    }
    let m = (w.loads - chw) / 2.0;
    if m < 0.5 {
        return None;
    }
    let denom = w.stores - out_len - m;
    if denom < 0.5 {
        return None;
    }
    let filters = 2.0 * m / denom;
    if filters < 0.5 {
        return None;
    }
    let f_round = filters.round().max(1.0);
    let s_pred = out_len + m + 2.0 * m / f_round;
    let residual = (w.stores - s_pred).abs() / w.stores.max(1.0)
        + (filters - f_round).abs() / filters.max(1.0);
    Some(ConvFit {
        output: out_len.round() as usize,
        input: chw.round() as usize,
        filters: f_round as usize,
        residual,
    })
}

/// Names one layer window: cheap ratio tests dispatch the
/// constant-shape kernels (flatten, pool, relu, softmax), then the
/// dense and conv inversions compete on residual.
pub fn classify_window(w: &LayerWindow) -> LayerHypothesis {
    if w.total() < 8.0 {
        return LayerHypothesis::bare(LayerKind::Flatten, 0);
    }
    let s = w.stores.max(1.0);
    let ls = w.loads / s;
    let bs = w.branches / s;
    let al = w.alu / s;
    // Pool: k² loads and branches per output, one store and one ALU op
    // per output. The alu/store and branch/load shape guards keep
    // noise-inflated windows (high load/store ratio, but no pooling
    // signature) from landing here.
    if ls >= 3.0 && al <= 1.5 && (bs - ls).abs() / ls <= 0.2 {
        let k = ls.sqrt().round().max(1.0) as usize;
        let mut h = LayerHypothesis::bare(LayerKind::Pool, w.stores.round() as usize);
        h.pool_k = Some(k);
        return h;
    }
    if (ls - 1.0).abs() <= 0.2 && al <= 2.6 {
        let mut h = LayerHypothesis::bare(LayerKind::Relu, w.stores.round() as usize);
        h.branchy = Some(bs >= 1.5);
        return h;
    }
    if (ls - 1.5).abs() <= 0.2 && (bs - 1.5).abs() <= 0.3 && (3.0..=4.0).contains(&al) {
        return LayerHypothesis::bare(LayerKind::Softmax, (w.stores / 2.0).round() as usize);
    }
    let dense = fit_dense(w).filter(|f| f.residual <= MAX_FIT_RESIDUAL);
    let conv = fit_conv(w).filter(|f| f.residual <= MAX_FIT_RESIDUAL);
    match (dense, conv) {
        (Some(d), Some(c)) if d.residual <= c.residual => dense_hypothesis(d),
        (_, Some(c)) => conv_hypothesis(c),
        (Some(d), None) => dense_hypothesis(d),
        (None, None) => LayerHypothesis::bare(LayerKind::Unknown, 0),
    }
}

fn dense_hypothesis(f: DenseFit) -> LayerHypothesis {
    let mut h = LayerHypothesis::bare(LayerKind::Dense, f.output);
    h.fan_in = Some(f.input);
    h
}

fn conv_hypothesis(f: ConvFit) -> LayerHypothesis {
    let mut h = LayerHypothesis::bare(LayerKind::Conv, f.output);
    h.fan_in = Some(f.input);
    h.filters = Some(f.filters);
    h
}

/// The architecture-extraction adversary.
///
/// [`profile`](Adversary::profile) reduces a [`TraceCorpus`] to
/// per-layer median windows and names each one;
/// [`attack`](Adversary::attack) names the layers of a single unseen
/// trace (noisier — useful to check how stable the profiled hypothesis
/// is); [`report`](Adversary::report) returns the profiled
/// [`ArchitectureHypothesis`].
#[derive(Debug, Clone, Default)]
pub struct Extractor {
    hypothesis: Option<ArchitectureHypothesis>,
}

impl Extractor {
    /// A fresh, unprofiled extractor.
    pub fn new() -> Extractor {
        Extractor::default()
    }
}

impl Adversary for Extractor {
    type Corpus = TraceCorpus;
    type Trace = InferenceTrace;
    type Verdict = ArchitectureHypothesis;
    type Report = ArchitectureHypothesis;

    fn profile(&mut self, corpus: &TraceCorpus) -> Result<(), Error> {
        if corpus.is_empty() {
            return Err(Error::msg("cannot profile an empty trace corpus"));
        }
        let layers = corpus
            .median_windows()
            .iter()
            .map(classify_window)
            .collect();
        self.hypothesis = Some(ArchitectureHypothesis { layers });
        Ok(())
    }

    fn attack(&self, trace: &InferenceTrace) -> Result<ArchitectureHypothesis, Error> {
        if self.hypothesis.is_none() {
            return Err(AttackError::NotProfiled.into());
        }
        Ok(ArchitectureHypothesis {
            layers: trace.windows.iter().map(classify_window).collect(),
        })
    }

    fn report(&self) -> Option<&ArchitectureHypothesis> {
        self.hypothesis.as_ref()
    }
}

/// How well a hypothesis matches the truth, per field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryScore {
    /// True depth.
    pub depth_truth: usize,
    /// Recovered depth.
    pub depth_recovered: usize,
    /// Correct layer kinds over recovered layers.
    pub kind_precision: f64,
    /// Correct layer kinds over true layers.
    pub kind_recall: f64,
    /// Aligned non-flatten layers whose recovered size is within ±25%.
    pub dim_accuracy: f64,
    /// True relu layers whose flavour (branchy/branchless) was
    /// recovered.
    pub activation_accuracy: f64,
    /// Weighted aggregate in `[0, 1]`.
    pub overall: f64,
}

impl ToJson for RecoveryScore {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("depth_truth", &self.depth_truth)
            .field("depth_recovered", &self.depth_recovered)
            .field("kind_precision", &self.kind_precision)
            .field("kind_recall", &self.kind_recall)
            .field("dim_accuracy", &self.dim_accuracy)
            .field("activation_accuracy", &self.activation_accuracy)
            .field("overall", &self.overall);
        obj.finish();
    }
}

/// Scores `hypothesis` against the true layer stack.
///
/// Kinds are scored as precision (over recovered layers) and recall
/// (over true layers); dimensions count as recovered when within ±25%
/// of the truth (flatten layers, which carry no work, are exempt);
/// activation accuracy is over true relu layers only. The overall
/// score weighs depth 0.25, kind precision 0.35, dimensions 0.2 and
/// activations 0.2.
pub fn score(hypothesis: &ArchitectureHypothesis, truth: &[LayerTruth]) -> RecoveryScore {
    let depth_truth = truth.len();
    let depth_recovered = hypothesis.depth();
    let aligned = depth_truth.min(depth_recovered);

    let mut kind_correct = 0usize;
    let mut dim_considered = 0usize;
    let mut dim_correct = 0usize;
    let mut act_considered = 0usize;
    let mut act_correct = 0usize;
    for (t, h) in truth.iter().zip(&hypothesis.layers).take(aligned) {
        if t.kind == h.kind {
            kind_correct += 1;
        }
        if t.kind != LayerKind::Flatten && t.dim > 0 {
            dim_considered += 1;
            let err = (h.dim as f64 - t.dim as f64).abs() / t.dim as f64;
            if h.kind == t.kind && err <= 0.25 {
                dim_correct += 1;
            }
        }
        if let Some(truth_branchy) = t.branchy {
            act_considered += 1;
            if h.kind == LayerKind::Relu && h.branchy == Some(truth_branchy) {
                act_correct += 1;
            }
        }
    }

    let ratio = |num: usize, den: usize| {
        if den == 0 {
            1.0
        } else {
            num as f64 / den as f64
        }
    };
    let depth_score = if depth_truth == 0 {
        1.0
    } else {
        (1.0 - (depth_recovered as f64 - depth_truth as f64).abs() / depth_truth as f64).max(0.0)
    };
    let kind_precision = ratio(kind_correct, depth_recovered);
    let kind_recall = ratio(kind_correct, depth_truth);
    let dim_accuracy = ratio(dim_correct, dim_considered);
    let activation_accuracy = ratio(act_correct, act_considered);
    RecoveryScore {
        depth_truth,
        depth_recovered,
        kind_precision,
        kind_recall,
        dim_accuracy,
        activation_accuracy,
        overall: 0.25 * depth_score
            + 0.35 * kind_precision
            + 0.2 * dim_accuracy
            + 0.2 * activation_accuracy,
    }
}

/// The countermeasure arms `repro extract` evaluates. `dummy_events` is
/// the mean dummy-event budget of the noise arms — the `--dummy-events`
/// flag; the ablation and the frontier share the same knob.
pub fn extraction_arms(dummy_events: u64) -> [(&'static str, Option<Countermeasure>); 4] {
    [
        ("unprotected", None),
        ("constant-time", Some(Countermeasure::ConstantTime)),
        (
            "noise-injection",
            Some(Countermeasure::NoiseInjection { dummy_events }),
        ),
        ("combined", Some(Countermeasure::Combined { dummy_events })),
    ]
}

/// One arm of the extraction campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractRow {
    /// Arm name (`unprotected`, `constant-time`, …).
    pub arm: String,
    /// The countermeasure active on this arm.
    pub countermeasure: Option<Countermeasure>,
    /// The profiled hypothesis.
    pub hypothesis: ArchitectureHypothesis,
    /// Its score against the truth.
    pub score: RecoveryScore,
    /// Fraction of held-out traces whose single-trace attack names the
    /// same kind sequence as the profiled hypothesis (1.0 when no
    /// traces are held out).
    pub holdout_agreement: f64,
    /// The trace corpus was restored from the artifact cache.
    pub trace_cache_hit: bool,
}

impl ToJson for ExtractRow {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("arm", &self.arm)
            .field("countermeasure", &self.countermeasure)
            .field("hypothesis", &self.hypothesis)
            .field("score", &self.score)
            .field("holdout_agreement", &self.holdout_agreement)
            .field("trace_cache_hit", &self.trace_cache_hit);
        obj.finish();
    }
}

/// One point of the recovery-vs-samples curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplePoint {
    /// Profiling traces used.
    pub samples: usize,
    /// Overall recovery score at that corpus size.
    pub overall: f64,
    /// Kind precision at that corpus size.
    pub kind_precision: f64,
}

impl ToJson for SamplePoint {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("samples", &self.samples)
            .field("overall", &self.overall)
            .field("kind_precision", &self.kind_precision);
        obj.finish();
    }
}

/// Everything the extraction campaign produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractOutcome {
    /// The victim's true layer stack.
    pub truth: Vec<LayerTruth>,
    /// One row per arm, in [`extraction_arms`] order.
    pub rows: Vec<ExtractRow>,
    /// Recovery vs profiling-corpus size, on the unprotected arm.
    pub curve: Vec<SamplePoint>,
}

impl ExtractOutcome {
    /// Renders the recovery table for stdout.
    ///
    /// Column layout is fixed (not derived from the data), so the same
    /// scores always produce byte-identical output.
    pub fn render_table(&self) -> String {
        let name_w = self
            .rows
            .iter()
            .map(|r| r.arm.len())
            .max()
            .unwrap_or(3)
            .max("arm".len());
        let mut out = String::new();
        out.push_str(&format!(
            "{:<name_w$}  {:>7}  {:>6}  {:>6}  {:>6}  {:>6}  {:>7}  {:>6}\n",
            "arm", "depth", "kind-P", "kind-R", "dims", "act", "overall", "agree"
        ));
        out.push_str(&format!(
            "{:<name_w$}  {:>7}  {:>6}  {:>6}  {:>6}  {:>6}  {:>7}  {:>6}\n",
            "-".repeat(name_w),
            "-------",
            "------",
            "------",
            "------",
            "------",
            "-------",
            "------"
        ));
        for row in &self.rows {
            let s = &row.score;
            out.push_str(&format!(
                "{:<name_w$}  {:>3}/{:<3}  {:>6.2}  {:>6.2}  {:>6.2}  {:>6.2}  {:>7.2}  {:>6.2}\n",
                row.arm,
                s.depth_recovered,
                s.depth_truth,
                s.kind_precision,
                s.kind_recall,
                s.dim_accuracy,
                s.activation_accuracy,
                s.overall,
                row.holdout_agreement,
            ));
        }
        out
    }
}

impl ToJson for ExtractOutcome {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("truth", &self.truth)
            .field("rows", &self.rows)
            .field("curve", &self.curve);
        obj.finish();
    }
}

/// Trains (or restores from `cache`) the victim model of `cfg`, sharing
/// the pipeline's model artifact: same key, same seeds, same bytes.
pub(crate) fn obtain_model(
    cfg: &ExperimentConfig,
    cache: Option<&ArtifactCache>,
) -> Result<Network, Error> {
    if let Some(c) = cache {
        if let Some((net, _, _)) = c
            .load(artifact::MODEL_KIND, artifact::model_key(cfg))
            .and_then(|p| artifact::decode_model(&p))
        {
            return Ok(net);
        }
    }
    let _span = scnn_obs::Span::enter("extract.train");
    let train_set = cfg.generate_dataset(cfg.train_per_class, cfg.seed)?;
    let test_set = cfg.generate_dataset(cfg.test_per_class, cfg.seed ^ 0xFACE)?;
    let mut net = cfg.build_model();
    let report = train(&mut net, &train_set.to_samples(), &cfg.train)?;
    let test_accuracy = accuracy(&mut net, &test_set.to_samples())?;
    if let Some(c) = cache {
        let payload = artifact::encode_model(&net, &report, test_accuracy);
        let _ = c.store(artifact::MODEL_KIND, artifact::model_key(cfg), &payload);
    }
    Ok(net)
}

/// Measures `samples` traced inferences, one [`InferenceTrace`] each,
/// cycling the dataset's images. The pre-layer staging window (input
/// copy-in, before the first boundary) is stripped.
fn collect_traces(
    classifier: &mut dyn TracedClassifier,
    dataset: &Dataset,
    pmu: &mut SimulatedPmu,
    samples: usize,
) -> Result<TraceCorpus, Error> {
    let _span = scnn_obs::Span::enter("extract.collect");
    if dataset.is_empty() {
        return Err(Error::msg("cannot trace an empty dataset"));
    }
    let mut traces = Vec::with_capacity(samples);
    for i in 0..samples {
        scnn_obs::counter_add("extract.traces", 1);
        let (image, _) = dataset
            .get(i % dataset.len())
            .ok_or_else(|| Error::msg("dataset index out of range"))?;
        let mut nn_err: Option<scnn_nn::NnError> = None;
        let windows = pmu.measure_layers(&mut |probe| {
            if let Err(e) = classifier.classify_traced(image, probe) {
                nn_err = Some(e);
            }
        });
        if let Some(e) = nn_err {
            return Err(e.into());
        }
        traces.push(InferenceTrace {
            windows: windows
                .iter()
                .skip(1)
                .map(LayerWindow::from_snapshot)
                .collect(),
        });
    }
    Ok(TraceCorpus { traces })
}

/// Loads one arm's trace corpus from `cache` or collects and stores it.
/// Returns the corpus and whether it was a cache hit.
///
/// Per-arm seeds are content-addressed from the countermeasure's
/// canonical JSON ([`artifact::cm_seed_tag`]), exactly like the trace
/// key itself: any two commands (`extract`, `frontier`, …) that share a
/// trace key also produce byte-identical corpora, no matter which ran
/// first or at which arm position.
pub(crate) fn obtain_traces(
    base: &ExperimentConfig,
    net: &Network,
    test_set: &Dataset,
    cm: Option<Countermeasure>,
    cache: Option<&ArtifactCache>,
) -> Result<(TraceCorpus, bool), Error> {
    let samples = base.collection.samples_per_category;
    let mut cfg = base.clone();
    cfg.countermeasure = cm;
    let key = artifact::trace_key(&cfg, samples);
    if let Some(c) = cache {
        if let Some(traces) = c
            .load(artifact::TRACE_KIND, key)
            .and_then(|p| artifact::decode_traces(&p))
        {
            return Ok((TraceCorpus { traces }, true));
        }
    }
    let tag = artifact::cm_seed_tag(&cfg) as usize;
    let mut pmu = SimulatedPmu::new(base.pmu, category_seed(base.seed ^ 0xE47A, tag))?;
    let corpus = match cm {
        None => collect_traces(&mut net.clone(), test_set, &mut pmu, samples)?,
        Some(cm) => {
            let mut protected =
                ProtectedModel::new(net.clone(), cm, category_seed(base.seed ^ 0xE47B, tag));
            collect_traces(&mut protected, test_set, &mut pmu, samples)?
        }
    };
    if let Some(c) = cache {
        let _ = c.store(
            artifact::TRACE_KIND,
            key,
            &artifact::encode_traces(&corpus.traces),
        );
    }
    Ok((corpus, false))
}

/// Profiles `corpus`'s first `profile_n` traces and scores the result;
/// also reports agreement of single-trace attacks on the held-out rest.
pub(crate) fn profile_and_score(
    corpus: &TraceCorpus,
    profile_n: usize,
    truth: &[LayerTruth],
) -> Result<(ArchitectureHypothesis, RecoveryScore, f64), Error> {
    let mut extractor = Extractor::new();
    extractor.profile(&corpus.prefix(profile_n))?;
    let hypothesis = extractor
        .report()
        .cloned()
        .ok_or_else(|| Error::msg("extractor produced no report"))?;
    let holdout = &corpus.traces[profile_n.min(corpus.len())..];
    let agreement = if holdout.is_empty() {
        1.0
    } else {
        let kinds = hypothesis.kinds();
        let mut agree = 0usize;
        for t in holdout {
            if extractor.attack(t)?.kinds() == kinds {
                agree += 1;
            }
        }
        agree as f64 / holdout.len() as f64
    };
    let s = score(&hypothesis, truth);
    Ok((hypothesis, s, agreement))
}

/// Runs the extraction campaign: trains (or restores) the victim once,
/// traces it under every [`extraction_arms`] arm (`dummy_events` sizes
/// the noise arms), profiles the [`Extractor`] on the first
/// `profile_fraction` of each corpus, and scores every hypothesis
/// against the true layer stack. The unprotected arm additionally
/// reports recovery as a function of corpus size.
///
/// Arms run as ordered coarse-grain jobs on a [`Pool`] with `threads`
/// workers; every arm's environment is seeded purely from `(seed,
/// countermeasure)`, so the outcome is **bit-identical at every thread
/// count**. With a `cache`, the model artifact is shared with the
/// pipeline and each arm's trace corpus is checkpointed under its own
/// key.
///
/// # Errors
///
/// Returns [`Error`] when `profile_fraction` lies outside `(0, 1)`,
/// or when training, tracing or profiling fails.
pub fn run_extract(
    base: &ExperimentConfig,
    profile_fraction: f64,
    dummy_events: u64,
    threads: Threads,
    cache: Option<&ArtifactCache>,
) -> Result<ExtractOutcome, Error> {
    if !profile_fraction.is_finite() || profile_fraction <= 0.0 || profile_fraction >= 1.0 {
        return Err(AttackError::InvalidProfileFraction {
            fraction: profile_fraction,
        }
        .into());
    }
    let _span = scnn_obs::Span::enter("extract.run");
    let net = obtain_model(base, cache)?;
    let test_set = base.generate_dataset(base.test_per_class, base.seed ^ 0xFACE)?;
    let (first_image, _) = test_set
        .get(0)
        .ok_or_else(|| Error::msg("extraction needs a non-empty test set"))?;
    let truth = ground_truth(&net, first_image.shape())?;

    let samples = base.collection.samples_per_category;
    let profile_n = ((samples as f64 * profile_fraction).round() as usize).clamp(1, samples);

    let jobs: Vec<(usize, &'static str, Option<Countermeasure>)> = extraction_arms(dummy_events)
        .iter()
        .enumerate()
        .map(|(i, (name, cm))| (i, *name, *cm))
        .collect();
    let pool = Pool::new(threads);
    let results = pool.par_map(jobs, |(index, name, cm)| {
        let _span = scnn_obs::Span::enter_indexed("extract.arm", index as u64);
        let (corpus, hit) = obtain_traces(base, &net, &test_set, cm, cache)?;
        let (hypothesis, arm_score, agreement) = profile_and_score(&corpus, profile_n, &truth)?;
        let row = ExtractRow {
            arm: name.to_owned(),
            countermeasure: cm,
            hypothesis,
            score: arm_score,
            holdout_agreement: agreement,
            trace_cache_hit: hit,
        };
        // The unprotected arm doubles as the sample-count study: the
        // curve reuses prefixes of the corpus already collected, so it
        // costs no extra measurements.
        let curve = if index == 0 {
            let mut sizes = vec![1, profile_n.div_ceil(2), profile_n];
            sizes.sort_unstable();
            sizes.dedup();
            let mut points = Vec::with_capacity(sizes.len());
            for n in sizes {
                let (_, s, _) = profile_and_score(&corpus.prefix(n), n, &truth)?;
                points.push(SamplePoint {
                    samples: n,
                    overall: s.overall,
                    kind_precision: s.kind_precision,
                });
            }
            Some(points)
        } else {
            None
        };
        Ok::<(ExtractRow, Option<Vec<SamplePoint>>), Error>((row, curve))
    });

    let mut rows = Vec::with_capacity(results.len());
    let mut curve = Vec::new();
    for result in results {
        let (row, points) = result?;
        if let Some(points) = points {
            curve = points;
        }
        rows.push(row);
    }
    Ok(ExtractOutcome { truth, rows, curve })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DatasetKind;
    use scnn_hpc::SimPmuConfig;
    use scnn_nn::models;
    use scnn_uarch::{CoreConfig, NoiseConfig};

    /// Exact dense-kernel footprint for (`input`, `output`, `nnz`).
    fn dense_window(input: usize, output: usize, nnz: usize) -> LayerWindow {
        let (i, o, z) = (input as f64, output as f64, nnz as f64);
        let lanes = output.div_ceil(8) as f64;
        LayerWindow {
            loads: o + i + 2.0 * z * o,
            stores: o + z * o,
            branches: o + 2.0 * i + 2.0 + z * (lanes + 1.0),
            alu: o + i + z * (2.0 * o + lanes),
        }
    }

    /// Exact conv-kernel footprint for (`chw`, `out_len`, `m`, `f`).
    fn conv_window(chw: usize, out_len: usize, m: usize, f: usize) -> LayerWindow {
        let (c, o, mf, ff) = (chw as f64, out_len as f64, m as f64, f as f64);
        LayerWindow {
            loads: c + 2.0 * mf,
            stores: o + mf + 2.0 * mf / ff,
            branches: o + 2.0 * c + 2.0,
            alu: o + 2.0 * mf + c,
        }
    }

    fn pool_window(k: usize, out: usize) -> LayerWindow {
        let (kk, o) = ((k * k) as f64, out as f64);
        LayerWindow {
            loads: kk * o,
            stores: o,
            branches: kk * o + 1.0,
            alu: o,
        }
    }

    fn relu_window(n: usize, branchy: bool) -> LayerWindow {
        let nf = n as f64;
        LayerWindow {
            loads: nf,
            stores: nf,
            branches: if branchy { 2.0 * nf + 1.0 } else { nf + 1.0 },
            alu: if branchy { nf } else { 2.0 * nf },
        }
    }

    #[test]
    fn dense_inversion_recovers_dimensions_exactly() {
        for &(input, output, nnz) in &[(256usize, 64usize, 120usize), (64, 10, 30), (400, 10, 180)]
        {
            let h = classify_window(&dense_window(input, output, nnz));
            assert_eq!(h.kind, LayerKind::Dense, "{input}->{output}");
            assert_eq!(h.dim, output);
            assert_eq!(h.fan_in, Some(input));
        }
    }

    #[test]
    fn conv_inversion_recovers_dimensions_exactly() {
        // mnist-like conv1: 1×28×28 input, 8 filters of 5×5 → 8×24×24,
        // m divisible by f so the synthetic window is exact.
        let h = classify_window(&conv_window(784, 4608, 60_000, 8));
        assert_eq!(h.kind, LayerKind::Conv);
        assert_eq!(h.dim, 4608);
        assert_eq!(h.fan_in, Some(784));
        assert_eq!(h.filters, Some(8));
        // tiny conv: 1×12×12, 4 filters of 3×3 → 4×10×10.
        let h = classify_window(&conv_window(144, 400, 2520, 4));
        assert_eq!(h.kind, LayerKind::Conv);
        assert_eq!(h.dim, 400);
        assert_eq!(h.filters, Some(4));
    }

    #[test]
    fn ratio_kernels_classify_and_parameterise() {
        let h = classify_window(&pool_window(2, 1152));
        assert_eq!(h.kind, LayerKind::Pool);
        assert_eq!(h.dim, 1152);
        assert_eq!(h.pool_k, Some(2));

        let h = classify_window(&relu_window(4608, true));
        assert_eq!(h.kind, LayerKind::Relu);
        assert_eq!(h.branchy, Some(true));
        let h = classify_window(&relu_window(4608, false));
        assert_eq!(h.kind, LayerKind::Relu);
        assert_eq!(h.branchy, Some(false));

        let h = classify_window(&LayerWindow::default());
        assert_eq!(h.kind, LayerKind::Flatten);
    }

    #[test]
    fn conv_fit_rejects_dense_windows() {
        // A dense window's ALU < loads, so the closed-form conv
        // inversion goes negative immediately.
        assert!(fit_conv(&dense_window(64, 10, 40)).is_none());
    }

    #[test]
    fn corrupted_window_goes_unknown_not_misnamed() {
        // A noise-injection arm inflates loads/branches/alu by ~20k
        // while stores stay put: no kernel law explains that shape.
        let mut w = dense_window(64, 10, 40);
        w.loads += 20_000.0;
        w.branches += 20_000.0;
        w.alu += 20_000.0;
        assert_eq!(classify_window(&w).kind, LayerKind::Unknown);
    }

    #[test]
    fn median_windows_null_interrupt_spikes() {
        let clean = dense_window(256, 64, 120);
        let mut spiked = clean;
        spiked.loads += 9_000.0;
        spiked.alu += 40_000.0;
        let corpus = TraceCorpus {
            traces: vec![
                InferenceTrace {
                    windows: vec![clean],
                },
                InferenceTrace {
                    windows: vec![spiked],
                },
                InferenceTrace {
                    windows: vec![clean],
                },
            ],
        };
        let medians = corpus.median_windows();
        assert_eq!(medians.len(), 1);
        assert_eq!(medians[0], clean);
    }

    #[test]
    fn median_depth_is_modal_not_maximal() {
        let w = relu_window(100, true);
        let corpus = TraceCorpus {
            traces: vec![
                InferenceTrace {
                    windows: vec![w, w],
                },
                InferenceTrace {
                    windows: vec![w, w],
                },
                InferenceTrace { windows: vec![w] },
            ],
        };
        assert_eq!(corpus.median_windows().len(), 2);
    }

    #[test]
    fn extractor_refuses_attack_before_profile_and_empty_corpus() {
        let extractor = Extractor::new();
        assert!(extractor.attack(&InferenceTrace::default()).is_err());
        let mut extractor = Extractor::new();
        assert!(extractor.profile(&TraceCorpus::default()).is_err());
        assert!(extractor.report().is_none());
    }

    #[test]
    fn score_weighs_fields_as_documented() {
        let truth = vec![
            LayerTruth {
                kind: LayerKind::Conv,
                dim: 400,
                branchy: None,
                pool_k: None,
            },
            LayerTruth {
                kind: LayerKind::Relu,
                dim: 400,
                branchy: Some(true),
                pool_k: None,
            },
        ];
        let mut perfect = ArchitectureHypothesis::default();
        let mut conv = LayerHypothesis::bare(LayerKind::Conv, 400);
        conv.filters = Some(4);
        perfect.layers.push(conv);
        let mut relu = LayerHypothesis::bare(LayerKind::Relu, 400);
        relu.branchy = Some(true);
        perfect.layers.push(relu);
        let s = score(&perfect, &truth);
        assert_eq!(s.overall, 1.0);
        assert_eq!(s.kind_precision, 1.0);

        // Wrong activation flavour: only the 0.2 activation weight drops.
        let mut ct = perfect.clone();
        ct.layers[1].branchy = Some(false);
        let s = score(&ct, &truth);
        assert_eq!(s.kind_precision, 1.0);
        assert_eq!(s.activation_accuracy, 0.0);
        assert!((s.overall - 0.8).abs() < 1e-12);
    }

    #[test]
    fn quiet_traces_of_a_real_tiny_network_extract_perfectly() {
        // conv → relu → pool → flatten → dense on 1×12×12 inputs.
        let mut net = models::small_cnn(1, 12, 10, 77);
        let ds = crate::pipeline::ExperimentConfig::quick(DatasetKind::Mnist)
            .generate_dataset(4, 11)
            .unwrap();
        let mut pmu = SimulatedPmu::new(
            SimPmuConfig {
                core: CoreConfig::tiny(),
                noise: NoiseConfig::quiet(),
                ..SimPmuConfig::default()
            },
            5,
        )
        .unwrap();
        let corpus = collect_traces(&mut net, &ds, &mut pmu, 6).unwrap();
        let (image, _) = ds.get(0).unwrap();
        let truth = ground_truth(&net, image.shape()).unwrap();

        let mut extractor = Extractor::new();
        extractor.profile(&corpus).unwrap();
        let hypothesis = extractor.report().unwrap();
        assert_eq!(hypothesis.depth(), truth.len());
        let s = score(hypothesis, &truth);
        assert_eq!(s.kind_precision, 1.0, "{}", hypothesis.render());
        assert_eq!(s.dim_accuracy, 1.0, "{}", hypothesis.render());
        assert_eq!(s.activation_accuracy, 1.0);
    }

    #[test]
    fn run_extract_rejects_bad_profile_fractions() {
        let cfg = ExperimentConfig::quick(DatasetKind::Mnist);
        for bad in [0.0, 1.0, -0.5, f64::NAN] {
            let err = run_extract(&cfg, bad, 20_000, Threads::Count(1), None);
            assert!(
                matches!(
                    err,
                    Err(Error::Attack(AttackError::InvalidProfileFraction { .. }))
                ),
                "fraction {bad} must be rejected before any work"
            );
        }
    }

    #[test]
    fn outcome_json_round_trips_through_the_strict_parser() {
        let outcome = ExtractOutcome {
            truth: vec![LayerTruth {
                kind: LayerKind::Dense,
                dim: 10,
                branchy: None,
                pool_k: None,
            }],
            rows: vec![ExtractRow {
                arm: "unprotected".to_owned(),
                countermeasure: None,
                hypothesis: ArchitectureHypothesis {
                    layers: vec![LayerHypothesis::bare(LayerKind::Dense, 10)],
                },
                score: score(
                    &ArchitectureHypothesis {
                        layers: vec![LayerHypothesis::bare(LayerKind::Dense, 10)],
                    },
                    &[LayerTruth {
                        kind: LayerKind::Dense,
                        dim: 10,
                        branchy: None,
                        pool_k: None,
                    }],
                ),
                holdout_agreement: 1.0,
                trace_cache_hit: false,
            }],
            curve: vec![SamplePoint {
                samples: 1,
                overall: 1.0,
                kind_precision: 1.0,
            }],
        };
        let parsed = crate::json::parse(&outcome.to_json()).unwrap();
        let rows = parsed.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("arm").unwrap().as_str().unwrap(), "unprotected");
        assert_eq!(
            rows[0]
                .get("score")
                .unwrap()
                .get("overall")
                .unwrap()
                .as_f64()
                .unwrap(),
            1.0
        );
        assert_eq!(
            parsed.get("curve").unwrap().as_array().unwrap()[0]
                .get("samples")
                .unwrap()
                .as_f64()
                .unwrap(),
            1.0
        );
    }
}
