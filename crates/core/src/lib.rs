//! # scnn-core
//!
//! The primary contribution of *"How Secure are Deep Learning Algorithms
//! from Side-Channel based Reverse Engineering?"* (Alam & Mukhopadhyay,
//! DAC 2019): a dynamic **evaluator** that decides whether a CNN
//! classifier's hardware-performance-counter footprint leaks its private
//! inputs.
//!
//! The evaluator's protocol (paper §4):
//!
//! 1. [`collect`](collect::collect) — monitor HPC events around each
//!    classification, per input category;
//! 2. [`Evaluator`] — pairwise t-tests between the
//!    per-category distributions of each event;
//! 3. raise an [`Alarm`] when any pair is
//!    distinguishable at 95% confidence.
//!
//! Beyond the paper's core, the crate implements what its narrative
//! implies or proposes:
//!
//! - [`attack`] — a profiling (Gaussian template / k-NN) adversary that
//!   actually recovers input categories from counter readings, showing
//!   the alarm is not hypothetical;
//! - [`extract`] — the reverse-engineering adversary of the paper's
//!   title: per-layer counter windows invert each kernel's footprint to
//!   reconstruct the victim's architecture (both adversaries share the
//!   [`attack::Adversary`] profile → attack → report contract);
//! - [`countermeasure`] — constant-footprint kernels and noise
//!   injection, the "indistinguishable CPU footprints" the conclusion
//!   calls for, with an ablation pipeline to quantify them;
//! - [`pipeline`] — the end-to-end experiment driver (`dataset → train →
//!   collect → evaluate`) used by the `repro` binary to regenerate every
//!   table and figure.
//!
//! # Examples
//!
//! ```no_run
//! use scnn_core::pipeline::{DatasetKind, Experiment, ExperimentConfig};
//!
//! # fn main() -> Result<(), scnn_core::pipeline::ExperimentError> {
//! let outcome = Experiment::new(ExperimentConfig::quick(DatasetKind::Mnist)).run()?;
//! println!("{}", outcome.report.render_table());
//! assert!(outcome.report.alarm().raised());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod artifact;
pub mod attack;
pub mod collect;
pub mod countermeasure;
pub mod error;
pub mod evaluator;
pub mod extract;
pub mod frontier;
pub mod json;
pub mod pipeline;
pub mod report;
pub mod service;
pub mod sweep;
pub mod zoo;

pub use attack::{
    mount_attack, Adversary, AttackClassifier, AttackConfig, AttackOutcome, ClassifierAdversary,
};
pub use collect::{
    collect, CategoryObservations, CollectError, CollectionConfig, TracedClassifier,
};
pub use countermeasure::{Countermeasure, ProtectedModel};
pub use error::{Error, Result};
pub use evaluator::{
    Alarm, EvaluateError, Evaluator, EvaluatorConfig, EventLeakage, LeakageReport,
};
pub use extract::{
    run_extract, ArchitectureHypothesis, ExtractOutcome, Extractor, InferenceTrace,
    LayerHypothesis, LayerKind, RecoveryScore, TraceCorpus,
};
pub use frontier::{run_frontier, FrontierOptions, FrontierOutcome, FrontierRow};
pub use json::ToJson;
pub use pipeline::{
    Architecture, CacheUsage, DatasetKind, Experiment, ExperimentConfig, ExperimentOutcome,
    ModelScale,
};
pub use report::{render_distributions, render_kde, render_summary};
