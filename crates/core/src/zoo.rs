//! The microarchitecture zoo: JSON (de)serialization of
//! [`UarchConfig`] and the named presets embedded in the binary.
//!
//! `scnn-uarch` owns the config *type* and its validation; this module
//! owns its on-disk shape, read with the strict in-tree JSON parser
//! ([`crate::json::parse`]). The schema is flat and explicit (DESIGN.md
//! §13): per-level cache geometry and policies, latencies, prefetcher,
//! predictor, TLB and cycle model. Parsing is `telemetry_lint`-strict —
//! an unknown field is an error, a missing required field is reported by
//! its dotted name, and a bad enum name lists the accepted spellings —
//! because a silently ignored typo in a platform file would quietly
//! measure the wrong machine.
//!
//! The shipped presets live under `crates/core/presets/` and are
//! compiled in via `include_str!`, so `--uarch <name>` works without any
//! filesystem layout assumptions; `--uarch <path>` reads the same schema
//! from disk. The writer ([`ToJson`] on [`UarchConfig`]) emits exactly
//! this schema, and the canonical [`SimPmuConfig`] encoding built on it
//! is what [`crate::artifact`] digests into cache keys — every uarch
//! field is inside the key, so a sweep over the zoo resumes per preset.

use crate::json::{parse, write_str, JsonParseError, ObjectWriter, ToJson, Value};
use scnn_hpc::{SimPmuConfig, WarmupPolicy};
use scnn_uarch::{
    CacheConfig, CoreConfig, CycleModel, HierarchyConfig, LatencyModel, NoiseConfig, PredictorKind,
    PrefetcherKind, ReplacementPolicy, TlbConfig, UarchConfig, UarchConfigError, WritePolicy,
};
use std::fmt;

/// The shipped preset zoo: `(name, embedded JSON source)` pairs, in
/// display order. `xeon-like` is the default platform (identical to
/// [`UarchConfig::xeon_like`], pinned by a test).
pub const PRESETS: [(&str, &str); 4] = [
    ("xeon-like", include_str!("../presets/xeon-like.json")),
    ("mobile-like", include_str!("../presets/mobile-like.json")),
    (
        "embedded-like",
        include_str!("../presets/embedded-like.json"),
    ),
    ("xeon-plru", include_str!("../presets/xeon-plru.json")),
];

/// Names of the shipped presets, in display order.
pub fn preset_names() -> Vec<&'static str> {
    PRESETS.iter().map(|&(name, _)| name).collect()
}

/// The named preset, if it ships with the binary.
pub fn preset(name: &str) -> Option<UarchConfig> {
    let (_, src) = PRESETS.iter().find(|&&(n, _)| n == name)?;
    Some(parse_uarch(src).expect("embedded presets are validated by tests"))
}

/// Every shipped preset, parsed, in display order.
pub fn zoo() -> Vec<UarchConfig> {
    PRESETS
        .iter()
        .map(|&(name, _)| preset(name).expect("name comes from the table"))
        .collect()
}

/// Resolves a `--uarch` argument: a preset name first, otherwise a path
/// to a config file in the same schema.
///
/// # Errors
///
/// Returns [`UarchError`] when the file cannot be read or does not
/// parse/validate.
pub fn load_uarch(spec: &str) -> Result<UarchConfig, UarchError> {
    if let Some(cfg) = preset(spec) {
        return Ok(cfg);
    }
    let src = std::fs::read_to_string(spec).map_err(|e| UarchError::Io {
        path: spec.to_owned(),
        detail: e.to_string(),
    })?;
    parse_uarch(&src)
}

/// Why a uarch config document was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum UarchError {
    /// The document is not JSON at all.
    Json(JsonParseError),
    /// The document is JSON but a value has the wrong shape.
    Shape {
        /// Dotted path of the offending value.
        field: String,
        /// What was expected there.
        detail: String,
    },
    /// A required field is absent.
    Missing {
        /// Dotted path of the absent field.
        field: String,
    },
    /// A field the schema does not define (strict mode: typos are
    /// errors, not silently-default values).
    Unknown {
        /// Dotted path of the unexpected field.
        field: String,
    },
    /// The document parsed but describes an uninstantiable platform.
    Invalid(UarchConfigError),
    /// The config file could not be read.
    Io {
        /// The path given.
        path: String,
        /// The OS error.
        detail: String,
    },
}

impl fmt::Display for UarchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UarchError::Json(e) => write!(f, "uarch config: {e}"),
            UarchError::Shape { field, detail } => {
                write!(f, "uarch config: field \"{field}\": {detail}")
            }
            UarchError::Missing { field } => {
                write!(f, "uarch config: missing field \"{field}\"")
            }
            UarchError::Unknown { field } => {
                write!(f, "uarch config: unknown field \"{field}\"")
            }
            UarchError::Invalid(e) => write!(f, "uarch config: {e}"),
            UarchError::Io { path, detail } => {
                write!(f, "uarch config {path:?}: {detail} (not a preset name either; shipped presets: {})",
                    preset_names().join(", "))
            }
        }
    }
}

impl std::error::Error for UarchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UarchError::Json(e) => Some(e),
            UarchError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

/// Parses one uarch config document (the `--uarch` file / preset
/// schema), validating it before returning.
///
/// # Errors
///
/// Returns [`UarchError`] pinpointing the first problem by dotted field
/// path.
pub fn parse_uarch(src: &str) -> Result<UarchConfig, UarchError> {
    let root = parse(src).map_err(UarchError::Json)?;
    let m = members(&root, "")?;
    known(
        m,
        "",
        &[
            "name",
            "description",
            "l1d",
            "l2",
            "l3",
            "latency",
            "prefetcher",
            "predictor",
            "tlb",
            "cycles",
        ],
    )?;
    let cfg = UarchConfig {
        name: str_at(m, "name")?.to_owned(),
        description: match get(m, "description") {
            Some(v) => as_str(v, "description")?.to_owned(),
            None => String::new(),
        },
        core: CoreConfig {
            hierarchy: HierarchyConfig {
                l1d: cache_at(m, "l1d")?,
                l2: cache_at(m, "l2")?,
                l3: cache_at(m, "l3")?,
                latency: latency_at(m, "latency")?,
                prefetcher: enum_at(
                    m,
                    "prefetcher",
                    &PrefetcherKind::ALL.map(|k| k.name()),
                    PrefetcherKind::from_name,
                )?,
            },
            predictor: predictor_kind_at(m)?,
            predictor_bits: predictor_bits_at(m)?,
            tlb: tlb_at(m, "tlb")?,
            cycles: match get(m, "cycles") {
                Some(v) => cycles_of(v)?,
                None => CycleModel::default(),
            },
        },
    };
    cfg.validate().map_err(UarchError::Invalid)?;
    Ok(cfg)
}

// --- strict object walking helpers ---------------------------------

type Members = [(String, Value)];

fn dotted(path: &str, field: &str) -> String {
    if path.is_empty() {
        field.to_owned()
    } else {
        format!("{path}.{field}")
    }
}

fn members<'a>(v: &'a Value, path: &str) -> Result<&'a Members, UarchError> {
    match v {
        Value::Object(members) => Ok(members),
        _ => Err(UarchError::Shape {
            field: if path.is_empty() {
                "<root>".into()
            } else {
                path.into()
            },
            detail: "expected an object".into(),
        }),
    }
}

fn known(m: &Members, path: &str, allowed: &[&str]) -> Result<(), UarchError> {
    for (key, _) in m {
        if !allowed.contains(&key.as_str()) {
            return Err(UarchError::Unknown {
                field: dotted(path, key),
            });
        }
    }
    Ok(())
}

fn get<'a>(m: &'a Members, field: &str) -> Option<&'a Value> {
    m.iter().find(|(k, _)| k == field).map(|(_, v)| v)
}

fn require<'a>(m: &'a Members, path: &str, field: &str) -> Result<&'a Value, UarchError> {
    get(m, field).ok_or_else(|| UarchError::Missing {
        field: dotted(path, field),
    })
}

fn as_str<'a>(v: &'a Value, field: &str) -> Result<&'a str, UarchError> {
    v.as_str().ok_or_else(|| UarchError::Shape {
        field: field.to_owned(),
        detail: "expected a string".into(),
    })
}

fn str_at<'a>(m: &'a Members, field: &str) -> Result<&'a str, UarchError> {
    as_str(require(m, "", field)?, field)
}

fn f64_at(m: &Members, path: &str, field: &str) -> Result<f64, UarchError> {
    let full = dotted(path, field);
    require(m, path, field)?
        .as_f64()
        .ok_or_else(|| UarchError::Shape {
            field: full,
            detail: "expected a number".into(),
        })
}

/// A non-negative integer (counts, sizes, latencies). JSON numbers are
/// f64, so anything fractional, negative or above 2^53 is rejected.
fn uint_at(m: &Members, path: &str, field: &str) -> Result<u64, UarchError> {
    let n = f64_at(m, path, field)?;
    if n.fract() != 0.0 || !(0.0..9_007_199_254_740_992.0).contains(&n) {
        return Err(UarchError::Shape {
            field: dotted(path, field),
            detail: format!("expected a non-negative integer, got {n}"),
        });
    }
    Ok(n as u64)
}

fn usize_at(m: &Members, path: &str, field: &str) -> Result<usize, UarchError> {
    Ok(uint_at(m, path, field)? as usize)
}

fn enum_of<T>(
    v: &Value,
    field: &str,
    allowed: &[&str],
    lookup: impl Fn(&str) -> Option<T>,
) -> Result<T, UarchError> {
    let s = as_str(v, field)?;
    lookup(s).ok_or_else(|| UarchError::Shape {
        field: field.to_owned(),
        detail: format!("unknown name {s:?}; expected one of {}", allowed.join(", ")),
    })
}

fn enum_at<T>(
    m: &Members,
    field: &str,
    allowed: &[&str],
    lookup: impl Fn(&str) -> Option<T>,
) -> Result<T, UarchError> {
    enum_of(require(m, "", field)?, field, allowed, lookup)
}

// --- section parsers ------------------------------------------------

fn cache_at(m: &Members, path: &str) -> Result<CacheConfig, UarchError> {
    let m = members(require(m, "", path)?, path)?;
    known(
        m,
        path,
        &[
            "size_bytes",
            "assoc",
            "line_bytes",
            "policy",
            "write_policy",
        ],
    )?;
    let mut cfg = CacheConfig::new(
        usize_at(m, path, "size_bytes")?,
        usize_at(m, path, "assoc")?,
        usize_at(m, path, "line_bytes")?,
    );
    if let Some(v) = get(m, "policy") {
        cfg.policy = enum_of(
            v,
            &dotted(path, "policy"),
            &ReplacementPolicy::ALL.map(|p| p.name()),
            ReplacementPolicy::from_name,
        )?;
    }
    if let Some(v) = get(m, "write_policy") {
        cfg.write_policy = enum_of(
            v,
            &dotted(path, "write_policy"),
            &WritePolicy::ALL.map(|p| p.name()),
            WritePolicy::from_name,
        )?;
    }
    Ok(cfg)
}

fn latency_at(m: &Members, path: &str) -> Result<LatencyModel, UarchError> {
    let m = members(require(m, "", path)?, path)?;
    known(m, path, &["l1", "l2", "l3", "dram"])?;
    Ok(LatencyModel {
        l1: uint_at(m, path, "l1")?,
        l2: uint_at(m, path, "l2")?,
        l3: uint_at(m, path, "l3")?,
        dram: uint_at(m, path, "dram")?,
    })
}

fn predictor_members(m: &Members) -> Result<&Members, UarchError> {
    let pm = members(require(m, "", "predictor")?, "predictor")?;
    known(pm, "predictor", &["kind", "bits"])?;
    Ok(pm)
}

fn predictor_kind_at(m: &Members) -> Result<PredictorKind, UarchError> {
    let pm = predictor_members(m)?;
    enum_of(
        require(pm, "predictor", "kind")?,
        "predictor.kind",
        &PredictorKind::ALL.map(|k| k.name()),
        PredictorKind::from_name,
    )
}

fn predictor_bits_at(m: &Members) -> Result<u32, UarchError> {
    let pm = predictor_members(m)?;
    Ok(uint_at(pm, "predictor", "bits")? as u32)
}

fn tlb_at(m: &Members, path: &str) -> Result<TlbConfig, UarchError> {
    let m = members(require(m, "", path)?, path)?;
    known(m, path, &["entries", "assoc", "page_bytes"])?;
    Ok(TlbConfig {
        entries: usize_at(m, path, "entries")?,
        associativity: usize_at(m, path, "assoc")?,
        page_bytes: usize_at(m, path, "page_bytes")?,
    })
}

fn cycles_of(v: &Value) -> Result<CycleModel, UarchError> {
    let path = "cycles";
    let m = members(v, path)?;
    known(
        m,
        path,
        &[
            "base_ipc",
            "branch_miss_penalty",
            "tlb_miss_penalty",
            "memory_overlap",
            "bus_divider",
            "ref_ratio",
        ],
    )?;
    Ok(CycleModel {
        base_ipc: f64_at(m, path, "base_ipc")?,
        branch_miss_penalty: uint_at(m, path, "branch_miss_penalty")?,
        tlb_miss_penalty: uint_at(m, path, "tlb_miss_penalty")?,
        memory_overlap: f64_at(m, path, "memory_overlap")?,
        bus_divider: f64_at(m, path, "bus_divider")?,
        ref_ratio: f64_at(m, path, "ref_ratio")?,
    })
}

// --- writers: the same schema back out ------------------------------

impl ToJson for ReplacementPolicy {
    fn write_json(&self, out: &mut String) {
        write_str(out, self.name());
    }
}

impl ToJson for WritePolicy {
    fn write_json(&self, out: &mut String) {
        write_str(out, self.name());
    }
}

impl ToJson for PrefetcherKind {
    fn write_json(&self, out: &mut String) {
        write_str(out, self.name());
    }
}

impl ToJson for PredictorKind {
    fn write_json(&self, out: &mut String) {
        write_str(out, self.name());
    }
}

impl ToJson for CacheConfig {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("size_bytes", &self.size_bytes)
            .field("assoc", &self.associativity)
            .field("line_bytes", &self.line_bytes)
            .field("policy", &self.policy)
            .field("write_policy", &self.write_policy);
        obj.finish();
    }
}

impl ToJson for LatencyModel {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("l1", &self.l1)
            .field("l2", &self.l2)
            .field("l3", &self.l3)
            .field("dram", &self.dram);
        obj.finish();
    }
}

impl ToJson for TlbConfig {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("entries", &self.entries)
            .field("assoc", &self.associativity)
            .field("page_bytes", &self.page_bytes);
        obj.finish();
    }
}

impl ToJson for CycleModel {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("base_ipc", &self.base_ipc)
            .field("branch_miss_penalty", &self.branch_miss_penalty)
            .field("tlb_miss_penalty", &self.tlb_miss_penalty)
            .field("memory_overlap", &self.memory_overlap)
            .field("bus_divider", &self.bus_divider)
            .field("ref_ratio", &self.ref_ratio);
        obj.finish();
    }
}

/// Writes the core fields shared by [`CoreConfig`] and [`UarchConfig`]
/// (the latter prepends name/description).
fn core_fields(obj: &mut ObjectWriter<'_>, core: &CoreConfig) {
    struct Predictor {
        kind: PredictorKind,
        bits: u32,
    }
    impl ToJson for Predictor {
        fn write_json(&self, out: &mut String) {
            let mut obj = ObjectWriter::new(out);
            obj.field("kind", &self.kind).field("bits", &self.bits);
            obj.finish();
        }
    }
    obj.field("l1d", &core.hierarchy.l1d)
        .field("l2", &core.hierarchy.l2)
        .field("l3", &core.hierarchy.l3)
        .field("latency", &core.hierarchy.latency)
        .field("prefetcher", &core.hierarchy.prefetcher)
        .field(
            "predictor",
            &Predictor {
                kind: core.predictor,
                bits: core.predictor_bits,
            },
        )
        .field("tlb", &core.tlb)
        .field("cycles", &core.cycles);
}

impl ToJson for CoreConfig {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        core_fields(&mut obj, self);
        obj.finish();
    }
}

impl ToJson for UarchConfig {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("name", &self.name)
            .field("description", &self.description);
        core_fields(&mut obj, &self.core);
        obj.finish();
    }
}

// --- canonical PMU encoding (artifact cache keys) -------------------

impl ToJson for NoiseConfig {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("interrupts_per_mcycle", &self.interrupts_per_mcycle)
            .field("interrupt_instructions", &self.interrupt_instructions)
            .field("interrupt_branch_fraction", &self.interrupt_branch_fraction)
            .field(
                "interrupt_branch_miss_ratio",
                &self.interrupt_branch_miss_ratio,
            )
            .field("interrupt_llc_misses", &self.interrupt_llc_misses)
            .field(
                "context_switches_per_mcycle",
                &self.context_switches_per_mcycle,
            )
            .field("context_switch_llc_misses", &self.context_switch_llc_misses)
            .field("cycle_jitter", &self.cycle_jitter)
            .field("counter_jitter", &self.counter_jitter);
        obj.finish();
    }
}

impl ToJson for WarmupPolicy {
    fn write_json(&self, out: &mut String) {
        write_str(
            out,
            match self {
                WarmupPolicy::ColdStart => "cold-start",
                WarmupPolicy::Warm => "warm",
            },
        );
    }
}

impl ToJson for SimPmuConfig {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("core", &self.core)
            .field("noise", &self.noise)
            .field("warmup", &self.warmup)
            .field("clock_ghz", &self.clock_ghz)
            .field("hw_counters", &self.hw_counters);
        obj.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shipped_preset_parses_validates_and_round_trips() {
        for (name, src) in PRESETS {
            let cfg = parse_uarch(src).unwrap_or_else(|e| panic!("preset {name}: {e}"));
            assert_eq!(cfg.name, name, "file name and embedded name agree");
            assert!(cfg.validate().is_ok());
            // Writer output parses back to the identical config.
            let back = parse_uarch(&cfg.to_json()).unwrap();
            assert_eq!(back, cfg, "round trip through the writer: {name}");
        }
    }

    #[test]
    fn zoo_has_distinct_names_and_xeon_matches_the_rust_default() {
        let zoo = zoo();
        assert!(zoo.len() >= 4, "three platforms plus a policy variant");
        let mut names: Vec<&str> = zoo.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), zoo.len(), "preset names are unique");
        assert_eq!(
            preset("xeon-like").unwrap(),
            UarchConfig::xeon_like(),
            "the embedded default preset is today's hard-coded platform"
        );
    }

    #[test]
    fn load_resolves_presets_then_paths() {
        assert_eq!(load_uarch("mobile-like").unwrap().name, "mobile-like");
        let dir = std::env::temp_dir().join(format!("scnn-zoo-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("custom.json");
        let mut custom = preset("embedded-like").unwrap();
        custom.name = "my-board".to_owned();
        std::fs::write(&path, custom.to_json()).unwrap();
        let loaded = load_uarch(path.to_str().unwrap()).unwrap();
        assert_eq!(loaded, custom);
        assert!(matches!(
            load_uarch("no-such-preset-or-file"),
            Err(UarchError::Io { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn patch(src: &str, from: &str, to: &str) -> String {
        assert!(src.contains(from), "{from} not in preset source");
        src.replacen(from, to, 1)
    }

    #[test]
    fn bad_policy_name_lists_the_accepted_ones() {
        let src = patch(PRESETS[0].1, "\"policy\": \"lru\"", "\"policy\": \"plru\"");
        let err = parse_uarch(&src).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("l1d.policy"), "{msg}");
        assert!(msg.contains("\"plru\""), "{msg}");
        assert!(msg.contains("lru, fifo, tree-plru, random"), "{msg}");
    }

    #[test]
    fn zero_associativity_is_a_named_validation_error() {
        let src = patch(PRESETS[0].1, "\"assoc\": 8", "\"assoc\": 0");
        let err = parse_uarch(&src).unwrap_err();
        assert!(matches!(err, UarchError::Invalid(_)), "{err}");
        assert!(err.to_string().contains("\"l1d\""), "{err}");
    }

    #[test]
    fn missing_field_is_named() {
        let src = patch(PRESETS[0].1, "\"line_bytes\": 64, ", "");
        let err = parse_uarch(&src).unwrap_err();
        assert_eq!(
            err,
            UarchError::Missing {
                field: "l1d.line_bytes".into()
            }
        );
        assert!(err.to_string().contains("l1d.line_bytes"), "{err}");

        let src = patch(
            PRESETS[0].1,
            "  \"predictor\": { \"kind\": \"tournament\", \"bits\": 14 },\n",
            "",
        );
        let err = parse_uarch(&src).unwrap_err();
        assert!(err.to_string().contains("\"predictor\""), "{err}");
    }

    #[test]
    fn unknown_fields_are_errors() {
        let src = patch(
            PRESETS[0].1,
            "\"prefetcher\": \"stride\"",
            "\"prefetcher\": \"stride\",\n  \"turbo\": true",
        );
        assert_eq!(
            parse_uarch(&src).unwrap_err(),
            UarchError::Unknown {
                field: "turbo".into()
            }
        );
        let src = patch(PRESETS[0].1, "\"entries\": 64", "\"entires\": 64");
        let err = parse_uarch(&src).unwrap_err();
        assert_eq!(
            err,
            UarchError::Unknown {
                field: "tlb.entires".into()
            }
        );
    }

    #[test]
    fn fractional_and_negative_counts_are_rejected() {
        let src = patch(PRESETS[0].1, "\"assoc\": 8", "\"assoc\": 8.5");
        assert!(parse_uarch(&src)
            .unwrap_err()
            .to_string()
            .contains("non-negative integer"));
        let src = patch(PRESETS[0].1, "\"l1\": 4", "\"l1\": -4");
        assert!(parse_uarch(&src).is_err());
    }

    #[test]
    fn description_and_cycles_are_optional() {
        let minimal = r#"{
            "name": "min",
            "l1d": { "size_bytes": 1024, "assoc": 2, "line_bytes": 64 },
            "l2": { "size_bytes": 4096, "assoc": 4, "line_bytes": 64 },
            "l3": { "size_bytes": 16384, "assoc": 4, "line_bytes": 64 },
            "latency": { "l1": 4, "l2": 12, "l3": 36, "dram": 200 },
            "prefetcher": "none",
            "predictor": { "kind": "static-taken", "bits": 8 },
            "tlb": { "entries": 8, "assoc": 2, "page_bytes": 4096 }
        }"#;
        let cfg = parse_uarch(minimal).unwrap();
        assert_eq!(cfg.description, "");
        assert_eq!(cfg.core.cycles, CycleModel::default());
        assert_eq!(cfg.core.hierarchy.l1d.policy, ReplacementPolicy::Lru);
        assert_eq!(
            cfg.core.hierarchy.l1d.write_policy,
            WritePolicy::WriteBackAllocate
        );
    }

    #[test]
    fn pmu_encoding_is_canonical_and_covers_every_uarch_field() {
        let a = SimPmuConfig::default();
        assert_eq!(a.to_json(), SimPmuConfig::default().to_json());

        // Any uarch field change must change the encoding (it feeds the
        // artifact cache keys).
        let mut b = a;
        b.core.hierarchy.l3.policy = ReplacementPolicy::Random;
        assert_ne!(a.to_json(), b.to_json());
        let mut c = a;
        c.core.predictor_bits += 1;
        assert_ne!(a.to_json(), c.to_json());
        let mut d = a;
        d.core.cycles.ref_ratio = 1.0;
        assert_ne!(a.to_json(), d.to_json());

        // The encoding is valid JSON and names the zoo schema sections.
        let v = parse(&a.to_json()).unwrap();
        assert!(v.get("core").unwrap().get("l1d").is_some());
        assert!(v.get("noise").is_some());
        assert_eq!(
            v.get("warmup").unwrap().as_str(),
            Some("cold-start"),
            "warmup policy is part of the key"
        );
    }
}
