//! End-to-end experiment driver: dataset generation → CNN training →
//! HPC collection → leakage evaluation — the full protocol of the
//! paper's §5, as one configurable object.

use crate::artifact;
use crate::attack::{mount_attack, AttackConfig, AttackError, AttackOutcome};
use crate::collect::{
    category_seed, collect_selected, CategoryObservations, CollectError, CollectionConfig,
};
use crate::countermeasure::{Countermeasure, ProtectedModel};
use crate::evaluator::{EvaluateError, Evaluator, EvaluatorConfig, LeakageReport};
use scnn_cache::ArtifactCache;
use scnn_data::cifar_synth::{self, CifarSynthConfig};
use scnn_data::mnist_synth::{self, MnistSynthConfig};
use scnn_data::{Dataset, DatasetError};
use scnn_hpc::{SimPmuConfig, SimulatedPmu};
use scnn_nn::models;
use scnn_nn::train::{accuracy, train, TrainConfig, TrainReport};
use scnn_nn::Network;
use scnn_par::Threads;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Which case study to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// The MNIST case study (§5.2).
    Mnist,
    /// The CIFAR-10 case study (§5.3).
    Cifar10,
}

impl fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetKind::Mnist => write!(f, "MNIST"),
            DatasetKind::Cifar10 => write!(f, "CIFAR-10"),
        }
    }
}

/// Which model family the victim uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Architecture {
    /// The paper's convolutional models.
    #[default]
    Cnn,
    /// A multi-layer perceptron — the "other deep learning models" of the
    /// paper's future-work section.
    Mlp,
}

/// Experiment size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelScale {
    /// Down-scaled images and a single-conv model — seconds, for tests
    /// and doctests.
    Tiny,
    /// Paper-scale images (28×28 / 32×32) and LeNet-style models.
    Paper,
}

/// Full experiment configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Which dataset/case study.
    pub dataset: DatasetKind,
    /// Experiment size.
    pub scale: ModelScale,
    /// Victim model family.
    pub architecture: Architecture,
    /// The categories the evaluator monitors (original class labels). The
    /// paper uses four.
    pub categories: Vec<usize>,
    /// Training images generated per class (all 10 classes are trained).
    pub train_per_class: usize,
    /// Held-out images generated per class for measurement.
    pub test_per_class: usize,
    /// CNN training hyperparameters.
    pub train: TrainConfig,
    /// HPC collection parameters.
    pub collection: CollectionConfig,
    /// Evaluator parameters.
    pub evaluator: EvaluatorConfig,
    /// Simulated platform parameters.
    pub pmu: SimPmuConfig,
    /// Optional countermeasure to apply before measuring.
    pub countermeasure: Option<Countermeasure>,
    /// Master seed (datasets, weights, noise all derive from it).
    pub seed: u64,
}

impl ExperimentConfig {
    /// A fast configuration for tests and doctests (tiny model, few
    /// samples). Completes in seconds even in debug builds.
    pub fn quick(dataset: DatasetKind) -> Self {
        ExperimentConfig {
            dataset,
            scale: ModelScale::Tiny,
            architecture: Architecture::Cnn,
            categories: vec![0, 1, 2, 3],
            train_per_class: 12,
            test_per_class: 8,
            train: TrainConfig {
                epochs: 3,
                ..TrainConfig::default()
            },
            collection: CollectionConfig {
                samples_per_category: 12,
                ..CollectionConfig::default()
            },
            evaluator: EvaluatorConfig::default(),
            pmu: SimPmuConfig::default(),
            countermeasure: None,
            seed: 0x5C44,
        }
    }

    /// The paper-scale configuration behind Tables 1–2 and Figures 1, 3,
    /// 4 — full-size images, LeNet-style CNNs, 100 measurements per
    /// category.
    pub fn paper(dataset: DatasetKind) -> Self {
        ExperimentConfig {
            dataset,
            scale: ModelScale::Paper,
            architecture: Architecture::Cnn,
            categories: vec![0, 1, 2, 3],
            train_per_class: 60,
            test_per_class: 25,
            train: TrainConfig::default(),
            collection: CollectionConfig::default(),
            evaluator: EvaluatorConfig::default(),
            pmu: SimPmuConfig::default(),
            countermeasure: None,
            seed: 0xDAC2019,
        }
    }

    /// Returns the same config with a countermeasure applied.
    pub fn with_countermeasure(mut self, cm: Countermeasure) -> Self {
        self.countermeasure = Some(cm);
        self
    }

    // Fluent builders. Every field stays `pub` — these are sugar over
    // direct mutation, so `config.collection.samples_per_category = n`
    // and `config.samples(n)` remain interchangeable.

    /// Sets the number of HPC measurements per monitored category.
    pub fn samples(mut self, samples_per_category: usize) -> Self {
        self.collection.samples_per_category = samples_per_category;
        self
    }

    /// Sets the worker-thread policy for every parallel stage at once
    /// (collection, evaluation and minibatch training).
    pub fn threads(mut self, threads: Threads) -> Self {
        self.collection.threads = threads;
        self.evaluator.threads = threads;
        self.train.threads = threads;
        self
    }

    /// Sets the countermeasure to apply before measuring (fluent
    /// spelling of [`with_countermeasure`](Self::with_countermeasure)).
    pub fn countermeasure(mut self, cm: Countermeasure) -> Self {
        self.countermeasure = Some(cm);
        self
    }

    /// Sets the number of training epochs.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.train.epochs = epochs;
        self
    }

    /// Sets the minibatch size for training (`1` = per-example SGD).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.train.batch_size = batch_size;
        self
    }

    /// Sets the master seed (datasets, weights and noise derive from
    /// it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the victim model family.
    pub fn architecture(mut self, architecture: Architecture) -> Self {
        self.architecture = architecture;
        self
    }

    /// Sets the monitored categories (original class labels).
    pub fn categories(mut self, categories: Vec<usize>) -> Self {
        self.categories = categories;
        self
    }

    /// Sets the experiment size.
    pub fn scale(mut self, scale: ModelScale) -> Self {
        self.scale = scale;
        self
    }

    pub(crate) fn image_side(&self) -> usize {
        match (self.dataset, self.scale) {
            (DatasetKind::Mnist, ModelScale::Paper) => mnist_synth::SIDE,
            (DatasetKind::Cifar10, ModelScale::Paper) => cifar_synth::SIDE,
            (_, ModelScale::Tiny) => 12,
        }
    }

    pub(crate) fn generate_dataset(
        &self,
        per_class: usize,
        seed: u64,
    ) -> Result<Dataset, DatasetError> {
        match self.dataset {
            DatasetKind::Mnist => mnist_synth::generate(
                &MnistSynthConfig {
                    per_class,
                    side: self.image_side(),
                    ..MnistSynthConfig::default()
                },
                seed,
            ),
            DatasetKind::Cifar10 => cifar_synth::generate(
                &CifarSynthConfig {
                    per_class,
                    side: self.image_side(),
                    ..CifarSynthConfig::default()
                },
                seed,
            ),
        }
    }

    pub(crate) fn build_model(&self) -> Network {
        let seed = self.seed ^ 0xBEEF;
        let channels = match self.dataset {
            DatasetKind::Mnist => 1,
            DatasetKind::Cifar10 => 3,
        };
        match self.architecture {
            Architecture::Mlp => models::mnist_mlp(channels, self.image_side(), seed),
            Architecture::Cnn => match (self.dataset, self.scale) {
                (DatasetKind::Mnist, ModelScale::Paper) => models::mnist_cnn(seed),
                (DatasetKind::Cifar10, ModelScale::Paper) => models::cifar_cnn(seed),
                (DatasetKind::Mnist, ModelScale::Tiny) => {
                    models::small_cnn(1, self.image_side(), 10, seed)
                }
                (DatasetKind::Cifar10, ModelScale::Tiny) => {
                    models::small_cnn(3, self.image_side(), 10, seed)
                }
            },
        }
    }
}

/// Error from an experiment run.
#[derive(Debug)]
pub enum ExperimentError {
    /// Dataset generation failed.
    Dataset(DatasetError),
    /// Training failed.
    Train(scnn_nn::NnError),
    /// Collection failed.
    Collect(CollectError),
    /// Evaluation failed.
    Evaluate(EvaluateError),
    /// The PMU could not be built.
    Pmu(scnn_hpc::PmuError),
    /// The attack failed.
    Attack(AttackError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Dataset(e) => write!(f, "dataset: {e}"),
            ExperimentError::Train(e) => write!(f, "training: {e}"),
            ExperimentError::Collect(e) => write!(f, "collection: {e}"),
            ExperimentError::Evaluate(e) => write!(f, "evaluation: {e}"),
            ExperimentError::Pmu(e) => write!(f, "pmu: {e}"),
            ExperimentError::Attack(e) => write!(f, "attack: {e}"),
        }
    }
}

impl Error for ExperimentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExperimentError::Dataset(e) => Some(e),
            ExperimentError::Train(e) => Some(e),
            ExperimentError::Collect(e) => Some(e),
            ExperimentError::Evaluate(e) => Some(e),
            ExperimentError::Pmu(e) => Some(e),
            ExperimentError::Attack(e) => Some(e),
        }
    }
}

impl From<DatasetError> for ExperimentError {
    fn from(e: DatasetError) -> Self {
        ExperimentError::Dataset(e)
    }
}
impl From<scnn_nn::NnError> for ExperimentError {
    fn from(e: scnn_nn::NnError) -> Self {
        ExperimentError::Train(e)
    }
}
impl From<CollectError> for ExperimentError {
    fn from(e: CollectError) -> Self {
        ExperimentError::Collect(e)
    }
}
impl From<EvaluateError> for ExperimentError {
    fn from(e: EvaluateError) -> Self {
        ExperimentError::Evaluate(e)
    }
}
impl From<scnn_hpc::PmuError> for ExperimentError {
    fn from(e: scnn_hpc::PmuError) -> Self {
        ExperimentError::Pmu(e)
    }
}
impl From<AttackError> for ExperimentError {
    fn from(e: AttackError) -> Self {
        ExperimentError::Attack(e)
    }
}

/// How much of a run was served from an [`ArtifactCache`].
///
/// All zeros (the [`Default`]) for uncached runs via
/// [`Experiment::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheUsage {
    /// The trained model was restored from the cache instead of trained.
    pub model_hit: bool,
    /// Monitored categories restored from collection checkpoints.
    pub categories_hit: usize,
    /// Monitored categories actually measured this run.
    pub categories_collected: usize,
    /// Artifacts written to the cache this run.
    pub writes: usize,
}

/// Everything an experiment run produced.
pub struct ExperimentOutcome {
    /// The evaluator's verdict (Tables 1–2, alarm).
    pub report: LeakageReport,
    /// Raw per-category observations (Figures 1, 3, 4).
    pub observations: Vec<CategoryObservations>,
    /// CNN training report.
    pub train_report: TrainReport,
    /// Held-out classification accuracy of the CNN.
    pub test_accuracy: f64,
    /// The (possibly countermeasure-rewritten) trained network.
    pub network: Network,
    /// What the artifact cache contributed (all zeros when uncached).
    pub cache: CacheUsage,
}

impl fmt::Debug for ExperimentOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExperimentOutcome")
            .field("alarm", &self.report.alarm().raised())
            .field("test_accuracy", &self.test_accuracy)
            .finish_non_exhaustive()
    }
}

impl ExperimentOutcome {
    /// Mounts the profiling attack on this run's observations.
    ///
    /// # Errors
    ///
    /// Propagates [`AttackError`].
    pub fn mount_attack(&self, config: &AttackConfig) -> Result<AttackOutcome, AttackError> {
        mount_attack(&self.observations, config)
    }
}

/// The experiment driver.
#[derive(Debug, Clone)]
pub struct Experiment {
    config: ExperimentConfig,
}

impl Experiment {
    /// Creates the driver.
    pub fn new(config: ExperimentConfig) -> Self {
        Experiment { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Runs the full protocol:
    ///
    /// 1. generate train/test datasets (all 10 classes);
    /// 2. train the CNN;
    /// 3. select the monitored categories from the test set;
    /// 4. measure `samples_per_category` traced classifications per
    ///    category through the simulated PMU (with the countermeasure
    ///    applied, if any);
    /// 5. run the pairwise-t-test evaluator.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] from whichever stage fails.
    pub fn run(&self) -> Result<ExperimentOutcome, ExperimentError> {
        self.run_inner(None)
    }

    /// Runs the protocol with a persistent [`ArtifactCache`]: the trained
    /// model and each category's observations are looked up before being
    /// recomputed, and stored after.
    ///
    /// A fully warm run (model plus every category) skips dataset
    /// synthesis, training and collection outright; a partially warm one
    /// — e.g. an interrupted campaign — retrains/recollects only what is
    /// missing and checkpoints each category as it completes. The outcome
    /// is **bit-identical** to [`run`](Self::run): artifacts are keyed by
    /// every config field that feeds them (and no others — see
    /// [`crate::artifact`]), and a corrupt or truncated artifact decodes
    /// to a miss, never a wrong answer.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] from whichever stage fails. Cache I/O
    /// failures are not errors: an unreadable artifact is a miss and an
    /// unwritable store is skipped.
    pub fn run_cached(&self, cache: &ArtifactCache) -> Result<ExperimentOutcome, ExperimentError> {
        self.run_inner(Some(cache))
    }

    fn run_inner(
        &self,
        cache: Option<&ArtifactCache>,
    ) -> Result<ExperimentOutcome, ExperimentError> {
        // Telemetry spans mark the protocol's phases. They only read the
        // wall clock — nothing they record feeds back into seeds or
        // results, so the run is identical with a recorder installed or
        // not (see DESIGN.md § Observability).
        let _run_span = scnn_obs::Span::enter("pipeline.run");
        let cfg = &self.config;
        let mut usage = CacheUsage::default();

        // Consult the cache before paying for anything. Category
        // artifacts are keyed by config alone (the model they depend on
        // is itself a pure function of config), so they are usable even
        // when the model artifact is absent.
        let cached_model = cache.and_then(|c| {
            c.load(artifact::MODEL_KIND, artifact::model_key(cfg))
                .and_then(|p| artifact::decode_model(&p))
        });
        usage.model_hit = cached_model.is_some();
        let mut slots: Vec<Option<CategoryObservations>> = match cache {
            Some(c) => (0..cfg.categories.len())
                .map(|i| {
                    c.load(artifact::CATEGORY_KIND, artifact::category_key(cfg, i))
                        .and_then(|p| artifact::decode_category(&p))
                })
                .collect(),
            None => vec![None; cfg.categories.len()],
        };
        // `select_classes` re-maps `cfg.categories[i]` to label `i`, so a
        // slot's position is also its campaign's category index.
        let missing: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(i))
            .collect();
        if cache.is_some() {
            usage.categories_hit = slots.len() - missing.len();
            usage.categories_collected = missing.len();
        }

        if usage.model_hit && missing.is_empty() {
            // Fully warm: every expensive phase is served from disk, so
            // the datasets need not even be synthesized.
            let (network, train_report, test_accuracy) =
                cached_model.expect("model_hit implies a decoded model");
            let observations: Vec<CategoryObservations> = slots.into_iter().flatten().collect();
            let evaluate_span = scnn_obs::Span::enter("pipeline.evaluate");
            let report = Evaluator::new(cfg.evaluator).evaluate(&observations)?;
            drop(evaluate_span);
            return Ok(ExperimentOutcome {
                report,
                observations,
                train_report,
                test_accuracy,
                network,
                cache: usage,
            });
        }

        let dataset_span = scnn_obs::Span::enter("pipeline.dataset");
        let train_set = cfg.generate_dataset(cfg.train_per_class, cfg.seed)?;
        let test_set = cfg.generate_dataset(cfg.test_per_class, cfg.seed ^ 0xFACE)?;
        drop(dataset_span);

        let (net, train_report, test_accuracy) = match cached_model {
            Some(restored) => restored,
            None => {
                let train_span = scnn_obs::Span::enter("pipeline.train");
                let mut net = cfg.build_model();
                let train_report = train(&mut net, &train_set.to_samples(), &cfg.train)?;
                let test_accuracy = accuracy(&mut net, &test_set.to_samples())?;
                drop(train_span);
                if let Some(c) = cache {
                    let payload = artifact::encode_model(&net, &train_report, test_accuracy);
                    if c.store(artifact::MODEL_KIND, artifact::model_key(cfg), &payload)
                        .is_ok()
                    {
                        usage.writes += 1;
                    }
                }
                (net, train_report, test_accuracy)
            }
        };

        if !missing.is_empty() {
            let collect_span = scnn_obs::Span::enter("pipeline.collect");
            let monitored = test_set.select_classes(&cfg.categories);

            // One campaign per category, each on its own cloned model and
            // its own PMU seeded from the category index — a pure
            // function of (seed, category), so readings are bit-identical
            // at every thread count (see `collect_campaign`), and a
            // subset campaign reproduces the full campaign's slice.
            let pmu_base = cfg.seed ^ 0x9019;
            let cm_base = cfg.seed ^ 0xD011;
            let make_pmu = |c: usize| SimulatedPmu::new(cfg.pmu, category_seed(pmu_base, c));
            // Checkpoint each category from the worker thread that
            // finished it, so an interrupted campaign resumes here.
            let stored = AtomicUsize::new(0);
            let on_collected = |obs: &CategoryObservations| {
                if let Some(c) = cache {
                    let key = artifact::category_key(cfg, obs.category);
                    let payload = artifact::encode_category(obs);
                    if c.store(artifact::CATEGORY_KIND, key, &payload).is_ok() {
                        stored.fetch_add(1, Ordering::Relaxed);
                    }
                }
            };
            let fresh = match cfg.countermeasure {
                None => collect_selected(
                    |_| net.clone(),
                    &monitored,
                    make_pmu,
                    &cfg.collection,
                    &missing,
                    on_collected,
                )?,
                Some(cm) => collect_selected(
                    |c| ProtectedModel::new(net.clone(), cm, category_seed(cm_base, c)),
                    &monitored,
                    make_pmu,
                    &cfg.collection,
                    &missing,
                    on_collected,
                )?,
            };
            for obs in fresh {
                let slot = obs.category;
                slots[slot] = Some(obs);
            }
            usage.writes += stored.load(Ordering::Relaxed);
            drop(collect_span);
        }
        let observations: Vec<CategoryObservations> = slots.into_iter().flatten().collect();
        // Each campaign measured a private clone; the caller gets the
        // trained network itself, unrewritten.
        let network = net;

        let evaluate_span = scnn_obs::Span::enter("pipeline.evaluate");
        let report = Evaluator::new(cfg.evaluator).evaluate(&observations)?;
        drop(evaluate_span);
        Ok(ExperimentOutcome {
            report,
            observations,
            train_report,
            test_accuracy,
            network,
            cache: usage,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scnn_hpc::HpcEvent;
    use scnn_uarch::{CoreConfig, NoiseConfig};

    fn fast(dataset: DatasetKind) -> ExperimentConfig {
        // Even quicker than quick(): tiny core, quiet noise, few samples.
        let mut cfg = ExperimentConfig::quick(dataset);
        cfg.train_per_class = 6;
        cfg.test_per_class = 4;
        cfg.train.epochs = 1;
        cfg.collection.samples_per_category = 6;
        cfg.pmu.core = CoreConfig::tiny();
        cfg
    }

    #[test]
    fn mnist_quick_pipeline_runs_and_alarms() {
        let outcome = Experiment::new(fast(DatasetKind::Mnist)).run().unwrap();
        assert_eq!(outcome.observations.len(), 4);
        assert_eq!(outcome.report.categories, 4);
        assert!(
            outcome.report.alarm().raised(),
            "zero-skip kernels on sparse digits must leak:\n{}",
            outcome.report.render_table()
        );
        assert!(outcome
            .report
            .alarm()
            .triggering_events()
            .contains(&HpcEvent::CacheMisses));
    }

    #[test]
    fn cifar_quick_pipeline_runs() {
        let outcome = Experiment::new(fast(DatasetKind::Cifar10)).run().unwrap();
        assert_eq!(outcome.observations.len(), 4);
        assert!(outcome.test_accuracy >= 0.0);
    }

    #[test]
    fn constant_time_countermeasure_silences_cache_misses() {
        let mut cfg = fast(DatasetKind::Mnist);
        cfg.pmu.noise = NoiseConfig::quiet();
        let leaky = Experiment::new(cfg.clone()).run().unwrap();
        let protected = Experiment::new(cfg.with_countermeasure(Countermeasure::ConstantTime))
            .run()
            .unwrap();
        let leaky_count = leaky
            .report
            .event(HpcEvent::CacheMisses)
            .unwrap()
            .pairwise
            .leak_count();
        let protected_count = protected
            .report
            .event(HpcEvent::CacheMisses)
            .unwrap()
            .pairwise
            .leak_count();
        assert!(
            protected_count < leaky_count,
            "constant-time kernels must remove cache-miss pairs: {leaky_count} -> {protected_count}"
        );
    }

    #[test]
    fn attack_on_outcome_beats_chance() {
        let mut cfg = fast(DatasetKind::Mnist);
        cfg.collection.samples_per_category = 10;
        let outcome = Experiment::new(cfg).run().unwrap();
        let attack = outcome
            .mount_attack(&crate::attack::AttackConfig::default())
            .unwrap();
        assert!(
            attack.accuracy > attack.chance_level(),
            "leaky model must be attackable: {:.2} vs chance {:.2}",
            attack.accuracy,
            attack.chance_level()
        );
    }

    #[test]
    fn mlp_architecture_runs_and_leaks() {
        let mut cfg = fast(DatasetKind::Mnist);
        cfg.architecture = Architecture::Mlp;
        let outcome = Experiment::new(cfg).run().unwrap();
        assert!(
            outcome.report.alarm().raised(),
            "zero-skipping MLPs see the raw image sparsity directly:\n{}",
            outcome.report.render_table()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            Experiment::new(fast(DatasetKind::Mnist))
                .run()
                .unwrap()
                .observations
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn identical_results_across_thread_counts() {
        use scnn_par::Threads;
        let run = |threads: Threads| {
            let mut cfg = fast(DatasetKind::Mnist);
            cfg.collection.threads = threads;
            cfg.evaluator.threads = threads;
            let o = Experiment::new(cfg).run().unwrap();
            (o.observations, o.report.per_event, o.test_accuracy)
        };
        let seq = run(Threads::Count(1));
        assert_eq!(seq, run(Threads::Count(2)));
        assert_eq!(seq, run(Threads::Count(4)));
    }

    fn scratch_cache(tag: &str) -> (std::path::PathBuf, ArtifactCache) {
        let dir = std::env::temp_dir().join(format!("scnn-pipeline-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ArtifactCache::open(&dir).unwrap();
        (dir, cache)
    }

    #[test]
    fn cached_rerun_is_warm_and_bit_identical() {
        let (dir, cache) = scratch_cache("warm");
        let cfg = fast(DatasetKind::Mnist);

        let cold = Experiment::new(cfg.clone()).run_cached(&cache).unwrap();
        assert!(!cold.cache.model_hit);
        assert_eq!(cold.cache.categories_collected, 4);
        assert_eq!(cold.cache.writes, 5, "model + 4 categories stored");

        let warm = Experiment::new(cfg.clone()).run_cached(&cache).unwrap();
        assert!(warm.cache.model_hit);
        assert_eq!(warm.cache.categories_hit, 4);
        assert_eq!(warm.cache.categories_collected, 0);
        assert_eq!(warm.cache.writes, 0);

        let plain = Experiment::new(cfg).run().unwrap();
        assert_eq!(plain.cache, CacheUsage::default());
        assert_eq!(warm.observations, cold.observations);
        assert_eq!(warm.observations, plain.observations);
        assert_eq!(warm.train_report, plain.train_report);
        assert_eq!(warm.test_accuracy, plain.test_accuracy);
        assert_eq!(warm.network.to_bytes(), plain.network.to_bytes());
        assert_eq!(
            warm.report.render_table(),
            plain.report.render_table(),
            "warm-cache output must be byte-identical to an uncached run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_recollects_only_the_missing_category() {
        let (dir, cache) = scratch_cache("resume");
        let cfg = fast(DatasetKind::Mnist);
        let cold = Experiment::new(cfg.clone()).run_cached(&cache).unwrap();

        // Simulate an interrupted campaign: category 2's checkpoint is
        // gone, everything else survived.
        std::fs::remove_file(cache.path_for(
            crate::artifact::CATEGORY_KIND,
            crate::artifact::category_key(&cfg, 2),
        ))
        .unwrap();

        let resumed = Experiment::new(cfg).run_cached(&cache).unwrap();
        assert!(resumed.cache.model_hit);
        assert_eq!(resumed.cache.categories_hit, 3);
        assert_eq!(resumed.cache.categories_collected, 1);
        assert_eq!(resumed.cache.writes, 1);
        assert_eq!(resumed.observations, cold.observations);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifact_is_recomputed_not_trusted() {
        let (dir, cache) = scratch_cache("corrupt");
        let cfg = fast(DatasetKind::Mnist);
        let cold = Experiment::new(cfg.clone()).run_cached(&cache).unwrap();

        // Flip one byte in the stored model artifact.
        let path = cache.path_for(
            crate::artifact::MODEL_KIND,
            crate::artifact::model_key(&cfg),
        );
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x80;
        std::fs::write(&path, &bytes).unwrap();

        let rerun = Experiment::new(cfg).run_cached(&cache).unwrap();
        assert!(!rerun.cache.model_hit, "corruption must read as a miss");
        assert_eq!(rerun.cache.writes, 1, "the model artifact is rewritten");
        assert_eq!(rerun.observations, cold.observations);
        assert_eq!(rerun.test_accuracy, cold.test_accuracy);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn builder_chain_matches_direct_mutation() {
        use scnn_par::Threads;
        let built = ExperimentConfig::quick(DatasetKind::Mnist)
            .samples(33)
            .threads(Threads::Count(2))
            .epochs(5)
            .batch_size(4)
            .seed(77)
            .architecture(Architecture::Mlp)
            .categories(vec![1, 2])
            .countermeasure(Countermeasure::ConstantTime);

        let mut direct = ExperimentConfig::quick(DatasetKind::Mnist);
        direct.collection.samples_per_category = 33;
        direct.collection.threads = Threads::Count(2);
        direct.evaluator.threads = Threads::Count(2);
        direct.train.threads = Threads::Count(2);
        direct.train.epochs = 5;
        direct.train.batch_size = 4;
        direct.seed = 77;
        direct.architecture = Architecture::Mlp;
        direct.categories = vec![1, 2];
        direct.countermeasure = Some(Countermeasure::ConstantTime);

        assert_eq!(built.collection.samples_per_category, 33);
        assert_eq!(format!("{built:?}"), format!("{direct:?}"));
    }
}
