//! The adversary's side: recovering the input category from HPC readings.
//!
//! The paper argues that distinguishable distributions let "an adversary
//! … exploit this side-channel information in order to uncover the
//! private input images". This module demonstrates that exploitability
//! concretely: profiling classifiers (a Gaussian template attack, the
//! classical side-channel tool, and a k-NN baseline) are trained on a
//! profiling split of the HPC observations and then asked to label unseen
//! measurements. Recovery accuracy far above chance *is* the reverse
//! engineering of the paper's title.

use crate::collect::CategoryObservations;
use crate::error::Error as CoreError;
use crate::json::{ObjectWriter, ToJson};
use scnn_hpc::HpcEvent;
use scnn_rng::{ChaCha8Rng, SeedableRng, SliceRandom};
use std::error::Error;
use std::fmt;

/// The unified attack API: every adversary in the suite — the
/// input-category classifiers here and the architecture extractor in
/// [`crate::extract`] — follows the same three-phase contract.
///
/// 1. [`profile`](Adversary::profile) learns a model of the victim from a
///    profiling corpus (and scores any held-out split it keeps back);
/// 2. [`attack`](Adversary::attack) applies the profiled model to one
///    unseen trace and returns a verdict;
/// 3. [`report`](Adversary::report) exposes the aggregate result, which
///    serializes for `--out` via [`ToJson`].
///
/// Errors use the workspace-wide [`crate::Error`] so drivers can treat
/// every adversary uniformly.
pub trait Adversary {
    /// The profiling corpus the adversary learns from.
    type Corpus: ?Sized;
    /// One unseen measurement to attack.
    type Trace: ?Sized;
    /// The adversary's conclusion about one trace.
    type Verdict;
    /// The aggregate, serialisable result of the campaign.
    type Report: ToJson;

    /// Learns the victim's behaviour from `corpus`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error`] when the corpus is degenerate or the
    /// adversary's configuration is invalid.
    fn profile(&mut self, corpus: &Self::Corpus) -> Result<(), CoreError>;

    /// Applies the profiled model to one unseen trace.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error`] when called before a successful
    /// [`profile`](Adversary::profile) or when `trace` has the wrong
    /// shape.
    fn attack(&self, trace: &Self::Trace) -> Result<Self::Verdict, CoreError>;

    /// The aggregate report, populated by [`profile`](Adversary::profile).
    fn report(&self) -> Option<&Self::Report>;
}

/// Classifier the adversary uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AttackClassifier {
    /// Per-class independent Gaussian templates (naive Bayes with
    /// Gaussian likelihoods) — the classical profiling attack.
    #[default]
    GaussianTemplate,
    /// Linear discriminant analysis: Gaussian templates with a *pooled
    /// full covariance* across classes. Exploits correlations between
    /// events (e.g. cache-misses and cycles move together) that the
    /// diagonal template ignores.
    Lda,
    /// k-nearest-neighbours on z-scored features.
    Knn {
        /// Neighbourhood size.
        k: usize,
    },
}

impl AttackClassifier {
    /// Stable label used in reports, JSON output and the `--classifier`
    /// flag (`knn` carries its neighbourhood size as `knn:K`).
    pub fn label(&self) -> String {
        match self {
            AttackClassifier::GaussianTemplate => "gaussian-template".to_owned(),
            AttackClassifier::Lda => "lda".to_owned(),
            AttackClassifier::Knn { k } => format!("knn:{k}"),
        }
    }

    /// Parses the `--classifier` flag vocabulary: `gaussian` (or
    /// `gaussian-template` / `template`), `lda`, `knn` (k = 5) or
    /// `knn:K`.
    pub fn parse_flag(s: &str) -> Option<AttackClassifier> {
        match s {
            "gaussian" | "gaussian-template" | "template" => {
                Some(AttackClassifier::GaussianTemplate)
            }
            "lda" => Some(AttackClassifier::Lda),
            "knn" => Some(AttackClassifier::Knn { k: 5 }),
            _ => {
                let k = s.strip_prefix("knn:")?.parse().ok()?;
                Some(AttackClassifier::Knn { k })
            }
        }
    }
}

/// Attack parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackConfig {
    /// Fraction of each category's measurements used for profiling.
    pub profile_fraction: f64,
    /// The classifier.
    pub classifier: AttackClassifier,
    /// Split seed.
    pub seed: u64,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            profile_fraction: 0.5,
            classifier: AttackClassifier::GaussianTemplate,
            seed: 0xA77AC4,
        }
    }
}

impl AttackConfig {
    // Fluent builders, mirroring `ExperimentConfig`. Every field stays
    // `pub` — these are sugar over direct mutation, plus the one place
    // where parameters get validated ([`AttackConfig::validate`], run by
    // `mount_attack` and `Adversary::profile` before any work happens).

    /// Sets the classifier.
    pub fn classifier(mut self, classifier: AttackClassifier) -> Self {
        self.classifier = classifier;
        self
    }

    /// Sets the fraction of each category's measurements used for
    /// profiling. Must lie strictly inside `(0, 1)`.
    pub fn profile_fraction(mut self, fraction: f64) -> Self {
        self.profile_fraction = fraction;
        self
    }

    /// Sets the profiling/holdout split seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Checks the parameters for values that would silently corrupt the
    /// attack: a profile fraction outside `(0, 1)` (the split would put
    /// everything — or nothing — into profiling) and a zero k-NN
    /// neighbourhood (no neighbours can vote).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidProfileFraction`] or
    /// [`AttackError::ZeroNeighbourhood`]; both convert into the unified
    /// [`crate::Error`] with `?`.
    pub fn validate(&self) -> Result<(), AttackError> {
        if !(self.profile_fraction.is_finite()
            && self.profile_fraction > 0.0
            && self.profile_fraction < 1.0)
        {
            return Err(AttackError::InvalidProfileFraction {
                fraction: self.profile_fraction,
            });
        }
        if matches!(self.classifier, AttackClassifier::Knn { k: 0 }) {
            return Err(AttackError::ZeroNeighbourhood);
        }
        Ok(())
    }
}

/// Error mounting the attack.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackError {
    /// Fewer than two categories.
    TooFewCategories,
    /// A category has too few measurements to split.
    TooFewMeasurements {
        /// The offending category.
        category: usize,
    },
    /// Observations carry no events.
    NoFeatures,
    /// The profiling fraction lies outside the open interval `(0, 1)`.
    InvalidProfileFraction {
        /// The rejected value.
        fraction: f64,
    },
    /// `Knn { k: 0 }` — a zero-size neighbourhood cannot vote.
    ZeroNeighbourhood,
    /// [`Adversary::attack`] was called before a successful
    /// [`Adversary::profile`].
    NotProfiled,
    /// A trace handed to [`Adversary::attack`] has the wrong number of
    /// features.
    TraceShape {
        /// Features the profiled model expects.
        expected: usize,
        /// Features the trace carried.
        got: usize,
    },
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::TooFewCategories => write!(f, "attack needs at least 2 categories"),
            AttackError::TooFewMeasurements { category } => {
                write!(f, "category {category} has too few measurements to split")
            }
            AttackError::NoFeatures => write!(f, "observations carry no HPC events"),
            AttackError::InvalidProfileFraction { fraction } => {
                write!(
                    f,
                    "profile fraction {fraction} is outside the open interval (0, 1)"
                )
            }
            AttackError::ZeroNeighbourhood => {
                write!(f, "k-NN needs a neighbourhood of at least 1 (k = 0 given)")
            }
            AttackError::NotProfiled => {
                write!(f, "adversary must profile a corpus before attacking traces")
            }
            AttackError::TraceShape { expected, got } => {
                write!(f, "trace carries {got} features, model expects {expected}")
            }
        }
    }
}

impl Error for AttackError {}

/// Attack outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackOutcome {
    /// Category-recovery accuracy on held-out measurements.
    pub accuracy: f64,
    /// Confusion matrix `confusion[truth][guess]`.
    pub confusion: Vec<Vec<usize>>,
    /// Held-out measurements evaluated.
    pub test_count: usize,
    /// Events used as features.
    pub features: Vec<HpcEvent>,
    /// The classifier used.
    pub classifier: AttackClassifier,
}

impl AttackOutcome {
    /// Chance accuracy for the category count.
    pub fn chance_level(&self) -> f64 {
        if self.confusion.is_empty() {
            0.0
        } else {
            1.0 / self.confusion.len() as f64
        }
    }

    /// True when recovery beats chance by `margin` (absolute).
    pub fn beats_chance_by(&self, margin: f64) -> bool {
        self.accuracy >= self.chance_level() + margin
    }
}

impl fmt::Display for AttackOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "input-category recovery: {:.1}% (chance {:.1}%, {} held-out measurements)",
            self.accuracy * 100.0,
            self.chance_level() * 100.0,
            self.test_count
        )?;
        writeln!(f, "confusion (rows = truth):")?;
        for row in &self.confusion {
            write!(f, " ")?;
            for v in row {
                write!(f, " {v:>4}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl ToJson for AttackOutcome {
    fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field("classifier", &self.classifier.label())
            .field("accuracy", &self.accuracy)
            .field("chance", &self.chance_level())
            .field("test_count", &self.test_count)
            .field("features", &self.features)
            .field("confusion", &self.confusion);
        obj.finish();
    }
}

struct LabelledVectors {
    features: Vec<HpcEvent>,
    /// (feature_vector, category)
    train: Vec<(Vec<f64>, usize)>,
    test: Vec<(Vec<f64>, usize)>,
}

fn split_vectors(
    observations: &[CategoryObservations],
    config: &AttackConfig,
) -> Result<LabelledVectors, AttackError> {
    if observations.len() < 2 {
        return Err(AttackError::TooFewCategories);
    }
    let features: Vec<HpcEvent> = observations[0].per_event.keys().copied().collect();
    if features.is_empty() {
        return Err(AttackError::NoFeatures);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for obs in observations {
        let n = obs.len();
        let cut = (n as f64 * config.profile_fraction).round() as usize;
        if cut == 0 || cut >= n {
            return Err(AttackError::TooFewMeasurements {
                category: obs.category,
            });
        }
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut rng);
        for (rank, &i) in idx.iter().enumerate() {
            let vector: Vec<f64> = features
                .iter()
                .map(|e| obs.series(*e).map(|s| s[i]).unwrap_or(0.0))
                .collect();
            if rank < cut {
                train.push((vector, obs.category));
            } else {
                test.push((vector, obs.category));
            }
        }
    }
    Ok(LabelledVectors {
        features,
        train,
        test,
    })
}

/// Gaussian template per class: feature means and variances.
struct Templates {
    classes: usize,
    means: Vec<Vec<f64>>,
    vars: Vec<Vec<f64>>,
    priors: Vec<f64>,
}

impl Templates {
    fn fit(train: &[(Vec<f64>, usize)], classes: usize, dims: usize) -> Templates {
        let mut means = vec![vec![0.0; dims]; classes];
        let mut counts = vec![0usize; classes];
        for (v, c) in train {
            counts[*c] += 1;
            for (m, x) in means[*c].iter_mut().zip(v) {
                *m += x;
            }
        }
        for (m, &n) in means.iter_mut().zip(&counts) {
            for x in m {
                *x /= n.max(1) as f64;
            }
        }
        let mut vars = vec![vec![0.0; dims]; classes];
        for (v, c) in train {
            for ((s, x), m) in vars[*c].iter_mut().zip(v).zip(&means[*c]) {
                *s += (x - m) * (x - m);
            }
        }
        for (s, &n) in vars.iter_mut().zip(&counts) {
            for x in s {
                // Variance floor keeps degenerate (constant) features from
                // producing infinite likelihoods.
                *x = (*x / (n.saturating_sub(1)).max(1) as f64).max(1e-6);
            }
        }
        let total: usize = counts.iter().sum();
        Templates {
            classes,
            means,
            vars,
            priors: counts
                .iter()
                .map(|&n| (n.max(1) as f64) / total.max(1) as f64)
                .collect(),
        }
    }

    fn classify(&self, v: &[f64]) -> usize {
        let mut best = 0usize;
        let mut best_ll = f64::NEG_INFINITY;
        for c in 0..self.classes {
            let mut ll = self.priors[c].ln();
            for ((x, m), s2) in v.iter().zip(&self.means[c]).zip(&self.vars[c]) {
                ll += -0.5 * ((x - m) * (x - m) / s2 + s2.ln());
            }
            if ll > best_ll {
                best_ll = ll;
                best = c;
            }
        }
        best
    }
}

/// LDA: class means + pooled covariance; classify by the linear
/// discriminant `δ_c(x) = μ_cᵀ Σ⁻¹ x − ½ μ_cᵀ Σ⁻¹ μ_c + ln π_c`.
struct LinearDiscriminant {
    classes: usize,
    /// Σ⁻¹ μ_c, one per class.
    weights: Vec<Vec<f64>>,
    /// −½ μ_cᵀ Σ⁻¹ μ_c + ln π_c per class.
    offsets: Vec<f64>,
}

impl LinearDiscriminant {
    fn fit(train: &[(Vec<f64>, usize)], classes: usize, dims: usize) -> LinearDiscriminant {
        // Class means and priors.
        let mut means = vec![vec![0.0f64; dims]; classes];
        let mut counts = vec![0usize; classes];
        for (v, c) in train {
            counts[*c] += 1;
            for (m, x) in means[*c].iter_mut().zip(v) {
                *m += x;
            }
        }
        for (m, &n) in means.iter_mut().zip(&counts) {
            for x in m {
                *x /= n.max(1) as f64;
            }
        }
        // Pooled covariance with ridge regularisation.
        let mut cov = vec![0.0f64; dims * dims];
        for (v, c) in train {
            for i in 0..dims {
                let di = v[i] - means[*c][i];
                for j in 0..dims {
                    cov[i * dims + j] += di * (v[j] - means[*c][j]);
                }
            }
        }
        let denom = train.len().saturating_sub(classes).max(1) as f64;
        for x in &mut cov {
            *x /= denom;
        }
        // Ridge: a fraction of the mean diagonal keeps Σ invertible even
        // with constant features.
        let trace: f64 = (0..dims).map(|i| cov[i * dims + i]).sum();
        let ridge = (trace / dims.max(1) as f64).max(1e-9) * 1e-3 + 1e-9;
        for i in 0..dims {
            cov[i * dims + i] += ridge;
        }
        let inv = invert(&cov, dims);

        let total: usize = counts.iter().sum();
        let mut weights = Vec::with_capacity(classes);
        let mut offsets = Vec::with_capacity(classes);
        for c in 0..classes {
            let w: Vec<f64> = (0..dims)
                .map(|i| (0..dims).map(|j| inv[i * dims + j] * means[c][j]).sum())
                .collect();
            let quad: f64 = w.iter().zip(&means[c]).map(|(wi, mi)| wi * mi).sum();
            let prior = (counts[c].max(1) as f64 / total.max(1) as f64).ln();
            offsets.push(-0.5 * quad + prior);
            weights.push(w);
        }
        LinearDiscriminant {
            classes,
            weights,
            offsets,
        }
    }

    fn classify(&self, v: &[f64]) -> usize {
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for c in 0..self.classes {
            let score: f64 = self.weights[c]
                .iter()
                .zip(v)
                .map(|(w, x)| w * x)
                .sum::<f64>()
                + self.offsets[c];
            if score > best_score {
                best_score = score;
                best = c;
            }
        }
        best
    }
}

/// Gauss–Jordan inverse of a small dense matrix (the feature count is at
/// most the event count, ≤ 12). Falls back to the identity for singular
/// inputs, which the ridge term prevents in practice.
fn invert(matrix: &[f64], n: usize) -> Vec<f64> {
    let mut a = matrix.to_vec();
    let mut inv = vec![0.0f64; n * n];
    for i in 0..n {
        inv[i * n + i] = 1.0;
    }
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        for row in (col + 1)..n {
            if a[row * n + col].abs() > a[pivot * n + col].abs() {
                pivot = row;
            }
        }
        if a[pivot * n + col].abs() < 1e-30 {
            // Singular: bail out with identity.
            let mut eye = vec![0.0f64; n * n];
            for i in 0..n {
                eye[i * n + i] = 1.0;
            }
            return eye;
        }
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
                inv.swap(col * n + k, pivot * n + k);
            }
        }
        let d = a[col * n + col];
        for k in 0..n {
            a[col * n + k] /= d;
            inv[col * n + k] /= d;
        }
        for row in 0..n {
            if row != col {
                let factor = a[row * n + col];
                if factor != 0.0 {
                    for k in 0..n {
                        a[row * n + k] -= factor * a[col * n + k];
                        inv[row * n + k] -= factor * inv[col * n + k];
                    }
                }
            }
        }
    }
    inv
}

fn knn_classify(train: &[(Vec<f64>, usize)], v: &[f64], k: usize, classes: usize) -> usize {
    let mut dists: Vec<(f64, usize)> = train
        .iter()
        .map(|(t, c)| {
            let d: f64 = t.iter().zip(v).map(|(a, b)| (a - b) * (a - b)).sum();
            (d, *c)
        })
        .collect();
    // total_cmp: a NaN distance (one corrupt counter reading) sorts last
    // instead of panicking, so it merely loses the vote.
    dists.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut votes = vec![0usize; classes];
    // k ≥ 1 is guaranteed by AttackConfig::validate.
    for &(_, c) in dists.iter().take(k) {
        votes[c] += 1;
    }
    votes
        .iter()
        .enumerate()
        .max_by_key(|(_, &v)| v)
        .map(|(c, _)| c)
        .unwrap_or(0)
}

/// Per-dimension `(mean, std)` of the train split — the normalisation
/// distance-based classification needs across events of wildly different
/// magnitudes. The statistics come from the train split only, so they
/// can be replayed onto held-out or future traces.
fn zscore_stats(train: &[(Vec<f64>, usize)]) -> Vec<(f64, f64)> {
    if train.is_empty() {
        return Vec::new();
    }
    let dims = train[0].0.len();
    let n = train.len() as f64;
    (0..dims)
        .map(|d| {
            let mean = train.iter().map(|(v, _)| v[d]).sum::<f64>() / n;
            let var = train
                .iter()
                .map(|(v, _)| (v[d] - mean).powi(2))
                .sum::<f64>()
                / n;
            (mean, var.sqrt().max(1e-9))
        })
        .collect()
}

/// Normalises one feature vector in place with [`zscore_stats`] output.
fn apply_norms(v: &mut [f64], norms: &[(f64, f64)]) {
    for (x, (mean, std)) in v.iter_mut().zip(norms) {
        *x = (*x - mean) / std;
    }
}

/// Mounts the profiling attack on collected observations.
///
/// # Errors
///
/// Returns [`AttackError`] on degenerate inputs.
///
/// # Examples
///
/// ```
/// use scnn_core::attack::{mount_attack, AttackConfig};
/// use scnn_core::collect::CategoryObservations;
/// use scnn_hpc::HpcEvent;
/// use std::collections::BTreeMap;
///
/// # fn main() -> Result<(), scnn_core::attack::AttackError> {
/// // Two categories whose cache-miss counts barely overlap.
/// let obs: Vec<CategoryObservations> = (0..2)
///     .map(|c| {
///         let mut per_event = BTreeMap::new();
///         per_event.insert(
///             HpcEvent::CacheMisses,
///             (0..40).map(|i| (c * 100) as f64 + (i % 5) as f64).collect(),
///         );
///         CategoryObservations { category: c, per_event, predictions: vec![c; 40] }
///     })
///     .collect();
/// let outcome = mount_attack(&obs, &AttackConfig::default())?;
/// assert!(outcome.accuracy > 0.9);
/// # Ok(())
/// # }
/// ```
pub fn mount_attack(
    observations: &[CategoryObservations],
    config: &AttackConfig,
) -> Result<AttackOutcome, AttackError> {
    let mut adversary = ClassifierAdversary::new(*config);
    adversary.fit_and_score(observations)?;
    Ok(adversary
        .outcome
        .take()
        .expect("fit_and_score populates the outcome"))
}

/// The profiled classifier an adversary carries between `profile` and
/// `attack`: the fitted model plus the train-split normalisation needed
/// to replay it onto new traces.
struct FittedClassifier {
    classes: usize,
    features: Vec<HpcEvent>,
    /// `(mean, std)` per feature for distance/discriminant models;
    /// `None` for the raw-feature Gaussian template.
    norms: Option<Vec<(f64, f64)>>,
    kind: FittedKind,
}

enum FittedKind {
    Template(Templates),
    Lda(LinearDiscriminant),
    Knn {
        train: Vec<(Vec<f64>, usize)>,
        k: usize,
    },
}

impl FittedClassifier {
    /// Labels one raw (un-normalised) feature vector.
    fn classify(&self, trace: &[f64]) -> usize {
        let mut v = trace.to_vec();
        if let Some(norms) = &self.norms {
            apply_norms(&mut v, norms);
        }
        match &self.kind {
            FittedKind::Template(t) => t.classify(&v),
            FittedKind::Lda(l) => l.classify(&v),
            FittedKind::Knn { train, k } => knn_classify(train, &v, *k, self.classes),
        }
    }
}

/// The input-category recovery adversary, restructured behind the
/// [`Adversary`] trait: [`profile`](Adversary::profile) splits the
/// corpus, fits the configured classifier on the profiling half and
/// scores the held-out half into an [`AttackOutcome`];
/// [`attack`](Adversary::attack) then labels any raw feature vector (one
/// value per [`AttackOutcome::features`] event). [`mount_attack`] is a
/// thin wrapper over this type.
pub struct ClassifierAdversary {
    config: AttackConfig,
    model: Option<FittedClassifier>,
    outcome: Option<AttackOutcome>,
}

impl ClassifierAdversary {
    /// Creates an adversary with the given parameters; nothing is
    /// validated or fitted until [`profile`](Adversary::profile).
    pub fn new(config: AttackConfig) -> Self {
        ClassifierAdversary {
            config,
            model: None,
            outcome: None,
        }
    }

    /// The configured parameters.
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }

    /// Validates, splits, fits and scores — the `AttackError`-typed core
    /// shared by [`mount_attack`] and the trait's `profile`.
    fn fit_and_score(&mut self, observations: &[CategoryObservations]) -> Result<(), AttackError> {
        self.config.validate()?;
        let mut vectors = split_vectors(observations, &self.config)?;
        let classes = observations.len();
        let dims = vectors.features.len();

        let norms = match self.config.classifier {
            AttackClassifier::GaussianTemplate => None,
            AttackClassifier::Lda | AttackClassifier::Knn { .. } => {
                let stats = zscore_stats(&vectors.train);
                for (v, _) in vectors.train.iter_mut() {
                    apply_norms(v, &stats);
                }
                Some(stats)
            }
        };
        let kind = match self.config.classifier {
            AttackClassifier::GaussianTemplate => {
                FittedKind::Template(Templates::fit(&vectors.train, classes, dims))
            }
            AttackClassifier::Lda => {
                FittedKind::Lda(LinearDiscriminant::fit(&vectors.train, classes, dims))
            }
            AttackClassifier::Knn { k } => FittedKind::Knn {
                train: std::mem::take(&mut vectors.train),
                k,
            },
        };
        let fitted = FittedClassifier {
            classes,
            features: vectors.features.clone(),
            norms,
            kind,
        };

        let mut confusion = vec![vec![0usize; classes]; classes];
        let mut correct = 0usize;
        for (v, truth) in &vectors.test {
            let guess = fitted.classify(v);
            confusion[*truth][guess] += 1;
            if guess == *truth {
                correct += 1;
            }
        }
        let test_count = vectors.test.len();
        self.outcome = Some(AttackOutcome {
            accuracy: correct as f64 / test_count.max(1) as f64,
            confusion,
            test_count,
            features: vectors.features,
            classifier: self.config.classifier,
        });
        self.model = Some(fitted);
        Ok(())
    }
}

impl Adversary for ClassifierAdversary {
    type Corpus = [CategoryObservations];
    type Trace = [f64];
    type Verdict = usize;
    type Report = AttackOutcome;

    fn profile(&mut self, corpus: &[CategoryObservations]) -> Result<(), CoreError> {
        self.fit_and_score(corpus)?;
        Ok(())
    }

    fn attack(&self, trace: &[f64]) -> Result<usize, CoreError> {
        let model = self.model.as_ref().ok_or(AttackError::NotProfiled)?;
        if trace.len() != model.features.len() {
            return Err(AttackError::TraceShape {
                expected: model.features.len(),
                got: trace.len(),
            }
            .into());
        }
        Ok(model.classify(trace))
    }

    fn report(&self) -> Option<&AttackOutcome> {
        self.outcome.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn obs_with_separation(delta: f64, n: usize) -> Vec<CategoryObservations> {
        (0..4)
            .map(|c| {
                let mut per_event = BTreeMap::new();
                per_event.insert(
                    HpcEvent::CacheMisses,
                    (0..n)
                        .map(|i| 1000.0 + c as f64 * delta + ((i * 13) % 17) as f64)
                        .collect(),
                );
                per_event.insert(
                    HpcEvent::Branches,
                    (0..n).map(|i| 50_000.0 + ((i * 7) % 23) as f64).collect(),
                );
                CategoryObservations {
                    category: c,
                    per_event,
                    predictions: vec![c; n],
                }
            })
            .collect()
    }

    #[test]
    fn template_attack_recovers_separated_categories() {
        let obs = obs_with_separation(100.0, 60);
        let out = mount_attack(&obs, &AttackConfig::default()).unwrap();
        assert!(out.accuracy > 0.9, "accuracy {}", out.accuracy);
        assert!(out.beats_chance_by(0.5));
        assert_eq!(out.confusion.len(), 4);
        assert_eq!(out.test_count, 4 * 30);
    }

    #[test]
    fn attack_fails_on_overlapping_categories() {
        let obs = obs_with_separation(0.0, 60);
        let out = mount_attack(&obs, &AttackConfig::default()).unwrap();
        assert!(
            out.accuracy < 0.5,
            "identical distributions should be unguessable: {}",
            out.accuracy
        );
    }

    #[test]
    fn lda_recovers_separated_categories() {
        let obs = obs_with_separation(100.0, 60);
        let out = mount_attack(
            &obs,
            &AttackConfig {
                classifier: AttackClassifier::Lda,
                ..AttackConfig::default()
            },
        )
        .unwrap();
        assert!(out.accuracy > 0.9, "accuracy {}", out.accuracy);
    }

    #[test]
    fn lda_exploits_correlated_features() {
        // Classes separated only along the *difference* of two strongly
        // correlated features: diagonal templates struggle, LDA nails it.
        let n = 80;
        let obs: Vec<CategoryObservations> = (0..2)
            .map(|c| {
                let mut per_event = BTreeMap::new();
                let common: Vec<f64> = (0..n).map(|i| ((i * 17) % 101) as f64 * 10.0).collect();
                per_event.insert(
                    HpcEvent::CacheMisses,
                    common.iter().map(|&x| x + c as f64 * 40.0).collect(),
                );
                per_event.insert(HpcEvent::Cycles, common.clone());
                CategoryObservations {
                    category: c,
                    per_event,
                    predictions: vec![c; n],
                }
            })
            .collect();
        let lda = mount_attack(
            &obs,
            &AttackConfig {
                classifier: AttackClassifier::Lda,
                ..AttackConfig::default()
            },
        )
        .unwrap();
        let diag = mount_attack(&obs, &AttackConfig::default()).unwrap();
        assert!(lda.accuracy > 0.95, "LDA accuracy {}", lda.accuracy);
        assert!(
            lda.accuracy >= diag.accuracy,
            "LDA ({}) must dominate the diagonal template ({}) here",
            lda.accuracy,
            diag.accuracy
        );
    }

    #[test]
    fn nan_observation_does_not_abort_the_attack() {
        // One corrupt counter reading in each classifier's path: the
        // attack must return an outcome (possibly degraded), never panic.
        let mut obs = obs_with_separation(100.0, 60);
        obs[1].per_event.get_mut(&HpcEvent::CacheMisses).unwrap()[3] = f64::NAN;
        for classifier in [
            AttackClassifier::GaussianTemplate,
            AttackClassifier::Lda,
            AttackClassifier::Knn { k: 5 },
        ] {
            let out = mount_attack(
                &obs,
                &AttackConfig {
                    classifier,
                    ..AttackConfig::default()
                },
            )
            .unwrap();
            assert_eq!(out.confusion.len(), 4, "{classifier:?}");
        }
    }

    #[test]
    fn matrix_inverse_roundtrip() {
        let m = vec![4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 2.0];
        let inv = invert(&m, 3);
        // M · M⁻¹ ≈ I
        for i in 0..3 {
            for j in 0..3 {
                let v: f64 = (0..3).map(|k| m[i * 3 + k] * inv[k * 3 + j]).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((v - expect).abs() < 1e-9, "({i},{j}) = {v}");
            }
        }
    }

    #[test]
    fn knn_also_works() {
        let obs = obs_with_separation(100.0, 60);
        let out = mount_attack(
            &obs,
            &AttackConfig {
                classifier: AttackClassifier::Knn { k: 5 },
                ..AttackConfig::default()
            },
        )
        .unwrap();
        assert!(out.accuracy > 0.9, "accuracy {}", out.accuracy);
    }

    #[test]
    fn accuracy_grows_with_separation() {
        let acc = |delta| {
            mount_attack(&obs_with_separation(delta, 60), &AttackConfig::default())
                .unwrap()
                .accuracy
        };
        assert!(acc(200.0) >= acc(8.0));
    }

    #[test]
    fn errors_on_degenerate_input() {
        assert!(matches!(
            mount_attack(&obs_with_separation(1.0, 60)[..1], &AttackConfig::default()),
            Err(AttackError::TooFewCategories)
        ));
        assert!(matches!(
            mount_attack(&obs_with_separation(1.0, 1), &AttackConfig::default()),
            Err(AttackError::TooFewMeasurements { .. })
        ));
    }

    #[test]
    fn display_mentions_chance() {
        let out = mount_attack(&obs_with_separation(100.0, 40), &AttackConfig::default()).unwrap();
        let text = out.to_string();
        assert!(text.contains("chance 25.0%"));
        assert!(text.contains("confusion"));
    }

    #[test]
    fn confusion_rows_sum_to_test_counts() {
        let out = mount_attack(&obs_with_separation(50.0, 40), &AttackConfig::default()).unwrap();
        let total: usize = out.confusion.iter().flatten().sum();
        assert_eq!(total, out.test_count);
    }

    #[test]
    fn builder_chain_matches_direct_mutation() {
        let built = AttackConfig::default()
            .classifier(AttackClassifier::Knn { k: 3 })
            .profile_fraction(0.7)
            .seed(9);
        let direct = AttackConfig {
            classifier: AttackClassifier::Knn { k: 3 },
            profile_fraction: 0.7,
            seed: 9,
        };
        assert_eq!(built, direct);
    }

    #[test]
    fn validate_rejects_zero_neighbourhood() {
        let config = AttackConfig::default().classifier(AttackClassifier::Knn { k: 0 });
        assert_eq!(config.validate(), Err(AttackError::ZeroNeighbourhood));
        assert_eq!(
            mount_attack(&obs_with_separation(100.0, 60), &config),
            Err(AttackError::ZeroNeighbourhood)
        );
        assert!(config
            .classifier(AttackClassifier::Knn { k: 1 })
            .validate()
            .is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range_profile_fractions() {
        for bad in [0.0, 1.0, -0.25, 1.5, f64::NAN, f64::INFINITY] {
            let config = AttackConfig::default().profile_fraction(bad);
            assert!(
                matches!(
                    config.validate(),
                    Err(AttackError::InvalidProfileFraction { .. })
                ),
                "fraction {bad} must be rejected"
            );
            assert!(
                mount_attack(&obs_with_separation(100.0, 60), &config).is_err(),
                "mount_attack must refuse fraction {bad}"
            );
        }
        assert!(AttackConfig::default()
            .profile_fraction(0.25)
            .validate()
            .is_ok());
    }

    #[test]
    fn validation_error_converts_to_unified_error() {
        let err: crate::Error = AttackConfig::default()
            .classifier(AttackClassifier::Knn { k: 0 })
            .validate()
            .unwrap_err()
            .into();
        assert!(err.to_string().contains("k-NN"), "{err}");
    }

    #[test]
    fn adversary_profiles_then_attacks_fresh_traces() {
        let obs = obs_with_separation(100.0, 60);
        let mut adversary = ClassifierAdversary::new(AttackConfig::default());
        adversary.profile(&obs).unwrap();
        let report = Adversary::report(&adversary).expect("profile populates the report");
        assert!(report.accuracy > 0.9, "accuracy {}", report.accuracy);

        // A fresh trace near category 3's template: the feature order is
        // the BTreeMap event order reported in `features`.
        assert_eq!(
            report.features,
            vec![HpcEvent::Branches, HpcEvent::CacheMisses]
        );
        let verdict = adversary
            .attack(&[50_011.0, 1000.0 + 3.0 * 100.0 + 8.0])
            .unwrap();
        assert_eq!(verdict, 3);
    }

    #[test]
    fn adversary_refuses_attacks_before_profiling_and_bad_shapes() {
        let adversary = ClassifierAdversary::new(AttackConfig::default());
        assert!(adversary.attack(&[1.0, 2.0]).is_err());
        assert!(Adversary::report(&adversary).is_none());

        let mut adversary = ClassifierAdversary::new(AttackConfig::default());
        adversary
            .profile(&obs_with_separation(100.0, 60)[..])
            .unwrap();
        let err = adversary.attack(&[1.0]).unwrap_err();
        assert!(err.to_string().contains("features"), "{err}");
    }

    #[test]
    fn mount_attack_matches_the_adversary_report() {
        for classifier in [
            AttackClassifier::GaussianTemplate,
            AttackClassifier::Lda,
            AttackClassifier::Knn { k: 5 },
        ] {
            let obs = obs_with_separation(60.0, 50);
            let config = AttackConfig::default().classifier(classifier);
            let direct = mount_attack(&obs, &config).unwrap();
            let mut adversary = ClassifierAdversary::new(config);
            adversary.profile(&obs[..]).unwrap();
            assert_eq!(
                &direct,
                Adversary::report(&adversary).unwrap(),
                "{classifier:?}"
            );
        }
    }

    #[test]
    fn outcome_json_parses_back() {
        let out = mount_attack(
            &obs_with_separation(100.0, 40),
            &AttackConfig::default().classifier(AttackClassifier::Knn { k: 5 }),
        )
        .unwrap();
        let v = crate::json::parse(&out.to_json()).expect("outcome JSON must parse");
        assert_eq!(
            v.get("classifier").and_then(crate::json::Value::as_str),
            Some("knn:5")
        );
        assert_eq!(
            v.get("accuracy").and_then(crate::json::Value::as_f64),
            Some(out.accuracy)
        );
        assert_eq!(
            v.get("confusion")
                .and_then(crate::json::Value::as_array)
                .map(<[crate::json::Value]>::len),
            Some(4)
        );
    }

    #[test]
    fn classifier_flag_round_trips() {
        assert_eq!(
            AttackClassifier::parse_flag("gaussian"),
            Some(AttackClassifier::GaussianTemplate)
        );
        assert_eq!(
            AttackClassifier::parse_flag("lda"),
            Some(AttackClassifier::Lda)
        );
        assert_eq!(
            AttackClassifier::parse_flag("knn"),
            Some(AttackClassifier::Knn { k: 5 })
        );
        assert_eq!(
            AttackClassifier::parse_flag("knn:7"),
            Some(AttackClassifier::Knn { k: 7 })
        );
        assert_eq!(AttackClassifier::parse_flag("forest"), None);
        assert_eq!(AttackClassifier::parse_flag("knn:x"), None);
        for c in [
            AttackClassifier::GaussianTemplate,
            AttackClassifier::Lda,
            AttackClassifier::Knn { k: 9 },
        ] {
            assert_eq!(AttackClassifier::parse_flag(&c.label()), Some(c));
        }
    }
}
