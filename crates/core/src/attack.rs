//! The adversary's side: recovering the input category from HPC readings.
//!
//! The paper argues that distinguishable distributions let "an adversary
//! … exploit this side-channel information in order to uncover the
//! private input images". This module demonstrates that exploitability
//! concretely: profiling classifiers (a Gaussian template attack, the
//! classical side-channel tool, and a k-NN baseline) are trained on a
//! profiling split of the HPC observations and then asked to label unseen
//! measurements. Recovery accuracy far above chance *is* the reverse
//! engineering of the paper's title.

use crate::collect::CategoryObservations;
use scnn_hpc::HpcEvent;
use scnn_rng::{ChaCha8Rng, SeedableRng, SliceRandom};
use std::error::Error;
use std::fmt;

/// Classifier the adversary uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AttackClassifier {
    /// Per-class independent Gaussian templates (naive Bayes with
    /// Gaussian likelihoods) — the classical profiling attack.
    #[default]
    GaussianTemplate,
    /// Linear discriminant analysis: Gaussian templates with a *pooled
    /// full covariance* across classes. Exploits correlations between
    /// events (e.g. cache-misses and cycles move together) that the
    /// diagonal template ignores.
    Lda,
    /// k-nearest-neighbours on z-scored features.
    Knn {
        /// Neighbourhood size.
        k: usize,
    },
}

/// Attack parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackConfig {
    /// Fraction of each category's measurements used for profiling.
    pub profile_fraction: f64,
    /// The classifier.
    pub classifier: AttackClassifier,
    /// Split seed.
    pub seed: u64,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            profile_fraction: 0.5,
            classifier: AttackClassifier::GaussianTemplate,
            seed: 0xA77AC4,
        }
    }
}

/// Error mounting the attack.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackError {
    /// Fewer than two categories.
    TooFewCategories,
    /// A category has too few measurements to split.
    TooFewMeasurements {
        /// The offending category.
        category: usize,
    },
    /// Observations carry no events.
    NoFeatures,
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::TooFewCategories => write!(f, "attack needs at least 2 categories"),
            AttackError::TooFewMeasurements { category } => {
                write!(f, "category {category} has too few measurements to split")
            }
            AttackError::NoFeatures => write!(f, "observations carry no HPC events"),
        }
    }
}

impl Error for AttackError {}

/// Attack outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackOutcome {
    /// Category-recovery accuracy on held-out measurements.
    pub accuracy: f64,
    /// Confusion matrix `confusion[truth][guess]`.
    pub confusion: Vec<Vec<usize>>,
    /// Held-out measurements evaluated.
    pub test_count: usize,
    /// Events used as features.
    pub features: Vec<HpcEvent>,
    /// The classifier used.
    pub classifier: AttackClassifier,
}

impl AttackOutcome {
    /// Chance accuracy for the category count.
    pub fn chance_level(&self) -> f64 {
        if self.confusion.is_empty() {
            0.0
        } else {
            1.0 / self.confusion.len() as f64
        }
    }

    /// True when recovery beats chance by `margin` (absolute).
    pub fn beats_chance_by(&self, margin: f64) -> bool {
        self.accuracy >= self.chance_level() + margin
    }
}

impl fmt::Display for AttackOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "input-category recovery: {:.1}% (chance {:.1}%, {} held-out measurements)",
            self.accuracy * 100.0,
            self.chance_level() * 100.0,
            self.test_count
        )?;
        writeln!(f, "confusion (rows = truth):")?;
        for row in &self.confusion {
            write!(f, " ")?;
            for v in row {
                write!(f, " {v:>4}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

struct LabelledVectors {
    features: Vec<HpcEvent>,
    /// (feature_vector, category)
    train: Vec<(Vec<f64>, usize)>,
    test: Vec<(Vec<f64>, usize)>,
}

fn split_vectors(
    observations: &[CategoryObservations],
    config: &AttackConfig,
) -> Result<LabelledVectors, AttackError> {
    if observations.len() < 2 {
        return Err(AttackError::TooFewCategories);
    }
    let features: Vec<HpcEvent> = observations[0].per_event.keys().copied().collect();
    if features.is_empty() {
        return Err(AttackError::NoFeatures);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for obs in observations {
        let n = obs.len();
        let cut = (n as f64 * config.profile_fraction).round() as usize;
        if cut == 0 || cut >= n {
            return Err(AttackError::TooFewMeasurements {
                category: obs.category,
            });
        }
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut rng);
        for (rank, &i) in idx.iter().enumerate() {
            let vector: Vec<f64> = features
                .iter()
                .map(|e| obs.series(*e).map(|s| s[i]).unwrap_or(0.0))
                .collect();
            if rank < cut {
                train.push((vector, obs.category));
            } else {
                test.push((vector, obs.category));
            }
        }
    }
    Ok(LabelledVectors {
        features,
        train,
        test,
    })
}

/// Gaussian template per class: feature means and variances.
struct Templates {
    classes: usize,
    means: Vec<Vec<f64>>,
    vars: Vec<Vec<f64>>,
    priors: Vec<f64>,
}

impl Templates {
    fn fit(train: &[(Vec<f64>, usize)], classes: usize, dims: usize) -> Templates {
        let mut means = vec![vec![0.0; dims]; classes];
        let mut counts = vec![0usize; classes];
        for (v, c) in train {
            counts[*c] += 1;
            for (m, x) in means[*c].iter_mut().zip(v) {
                *m += x;
            }
        }
        for (m, &n) in means.iter_mut().zip(&counts) {
            for x in m {
                *x /= n.max(1) as f64;
            }
        }
        let mut vars = vec![vec![0.0; dims]; classes];
        for (v, c) in train {
            for ((s, x), m) in vars[*c].iter_mut().zip(v).zip(&means[*c]) {
                *s += (x - m) * (x - m);
            }
        }
        for (s, &n) in vars.iter_mut().zip(&counts) {
            for x in s {
                // Variance floor keeps degenerate (constant) features from
                // producing infinite likelihoods.
                *x = (*x / (n.saturating_sub(1)).max(1) as f64).max(1e-6);
            }
        }
        let total: usize = counts.iter().sum();
        Templates {
            classes,
            means,
            vars,
            priors: counts
                .iter()
                .map(|&n| (n.max(1) as f64) / total.max(1) as f64)
                .collect(),
        }
    }

    fn classify(&self, v: &[f64]) -> usize {
        let mut best = 0usize;
        let mut best_ll = f64::NEG_INFINITY;
        for c in 0..self.classes {
            let mut ll = self.priors[c].ln();
            for ((x, m), s2) in v.iter().zip(&self.means[c]).zip(&self.vars[c]) {
                ll += -0.5 * ((x - m) * (x - m) / s2 + s2.ln());
            }
            if ll > best_ll {
                best_ll = ll;
                best = c;
            }
        }
        best
    }
}

/// LDA: class means + pooled covariance; classify by the linear
/// discriminant `δ_c(x) = μ_cᵀ Σ⁻¹ x − ½ μ_cᵀ Σ⁻¹ μ_c + ln π_c`.
struct LinearDiscriminant {
    classes: usize,
    /// Σ⁻¹ μ_c, one per class.
    weights: Vec<Vec<f64>>,
    /// −½ μ_cᵀ Σ⁻¹ μ_c + ln π_c per class.
    offsets: Vec<f64>,
}

impl LinearDiscriminant {
    fn fit(train: &[(Vec<f64>, usize)], classes: usize, dims: usize) -> LinearDiscriminant {
        // Class means and priors.
        let mut means = vec![vec![0.0f64; dims]; classes];
        let mut counts = vec![0usize; classes];
        for (v, c) in train {
            counts[*c] += 1;
            for (m, x) in means[*c].iter_mut().zip(v) {
                *m += x;
            }
        }
        for (m, &n) in means.iter_mut().zip(&counts) {
            for x in m {
                *x /= n.max(1) as f64;
            }
        }
        // Pooled covariance with ridge regularisation.
        let mut cov = vec![0.0f64; dims * dims];
        for (v, c) in train {
            for i in 0..dims {
                let di = v[i] - means[*c][i];
                for j in 0..dims {
                    cov[i * dims + j] += di * (v[j] - means[*c][j]);
                }
            }
        }
        let denom = train.len().saturating_sub(classes).max(1) as f64;
        for x in &mut cov {
            *x /= denom;
        }
        // Ridge: a fraction of the mean diagonal keeps Σ invertible even
        // with constant features.
        let trace: f64 = (0..dims).map(|i| cov[i * dims + i]).sum();
        let ridge = (trace / dims.max(1) as f64).max(1e-9) * 1e-3 + 1e-9;
        for i in 0..dims {
            cov[i * dims + i] += ridge;
        }
        let inv = invert(&cov, dims);

        let total: usize = counts.iter().sum();
        let mut weights = Vec::with_capacity(classes);
        let mut offsets = Vec::with_capacity(classes);
        for c in 0..classes {
            let w: Vec<f64> = (0..dims)
                .map(|i| (0..dims).map(|j| inv[i * dims + j] * means[c][j]).sum())
                .collect();
            let quad: f64 = w.iter().zip(&means[c]).map(|(wi, mi)| wi * mi).sum();
            let prior = (counts[c].max(1) as f64 / total.max(1) as f64).ln();
            offsets.push(-0.5 * quad + prior);
            weights.push(w);
        }
        LinearDiscriminant {
            classes,
            weights,
            offsets,
        }
    }

    fn classify(&self, v: &[f64]) -> usize {
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for c in 0..self.classes {
            let score: f64 = self.weights[c]
                .iter()
                .zip(v)
                .map(|(w, x)| w * x)
                .sum::<f64>()
                + self.offsets[c];
            if score > best_score {
                best_score = score;
                best = c;
            }
        }
        best
    }
}

/// Gauss–Jordan inverse of a small dense matrix (the feature count is at
/// most the event count, ≤ 12). Falls back to the identity for singular
/// inputs, which the ridge term prevents in practice.
fn invert(matrix: &[f64], n: usize) -> Vec<f64> {
    let mut a = matrix.to_vec();
    let mut inv = vec![0.0f64; n * n];
    for i in 0..n {
        inv[i * n + i] = 1.0;
    }
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        for row in (col + 1)..n {
            if a[row * n + col].abs() > a[pivot * n + col].abs() {
                pivot = row;
            }
        }
        if a[pivot * n + col].abs() < 1e-30 {
            // Singular: bail out with identity.
            let mut eye = vec![0.0f64; n * n];
            for i in 0..n {
                eye[i * n + i] = 1.0;
            }
            return eye;
        }
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
                inv.swap(col * n + k, pivot * n + k);
            }
        }
        let d = a[col * n + col];
        for k in 0..n {
            a[col * n + k] /= d;
            inv[col * n + k] /= d;
        }
        for row in 0..n {
            if row != col {
                let factor = a[row * n + col];
                if factor != 0.0 {
                    for k in 0..n {
                        a[row * n + k] -= factor * a[col * n + k];
                        inv[row * n + k] -= factor * inv[col * n + k];
                    }
                }
            }
        }
    }
    inv
}

fn knn_classify(train: &[(Vec<f64>, usize)], v: &[f64], k: usize, classes: usize) -> usize {
    let mut dists: Vec<(f64, usize)> = train
        .iter()
        .map(|(t, c)| {
            let d: f64 = t.iter().zip(v).map(|(a, b)| (a - b) * (a - b)).sum();
            (d, *c)
        })
        .collect();
    // total_cmp: a NaN distance (one corrupt counter reading) sorts last
    // instead of panicking, so it merely loses the vote.
    dists.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut votes = vec![0usize; classes];
    for &(_, c) in dists.iter().take(k.max(1)) {
        votes[c] += 1;
    }
    votes
        .iter()
        .enumerate()
        .max_by_key(|(_, &v)| v)
        .map(|(c, _)| c)
        .unwrap_or(0)
}

/// Normalises features to zero mean / unit variance using train-set
/// statistics (applied to both splits) — required for distance-based
/// classification across events of wildly different magnitudes.
fn zscore(train: &mut [(Vec<f64>, usize)], test: &mut [(Vec<f64>, usize)]) {
    if train.is_empty() {
        return;
    }
    let dims = train[0].0.len();
    for d in 0..dims {
        let n = train.len() as f64;
        let mean = train.iter().map(|(v, _)| v[d]).sum::<f64>() / n;
        let var = train
            .iter()
            .map(|(v, _)| (v[d] - mean).powi(2))
            .sum::<f64>()
            / n;
        let std = var.sqrt().max(1e-9);
        for (v, _) in train.iter_mut().chain(test.iter_mut()) {
            v[d] = (v[d] - mean) / std;
        }
    }
}

/// Mounts the profiling attack on collected observations.
///
/// # Errors
///
/// Returns [`AttackError`] on degenerate inputs.
///
/// # Examples
///
/// ```
/// use scnn_core::attack::{mount_attack, AttackConfig};
/// use scnn_core::collect::CategoryObservations;
/// use scnn_hpc::HpcEvent;
/// use std::collections::BTreeMap;
///
/// # fn main() -> Result<(), scnn_core::attack::AttackError> {
/// // Two categories whose cache-miss counts barely overlap.
/// let obs: Vec<CategoryObservations> = (0..2)
///     .map(|c| {
///         let mut per_event = BTreeMap::new();
///         per_event.insert(
///             HpcEvent::CacheMisses,
///             (0..40).map(|i| (c * 100) as f64 + (i % 5) as f64).collect(),
///         );
///         CategoryObservations { category: c, per_event, predictions: vec![c; 40] }
///     })
///     .collect();
/// let outcome = mount_attack(&obs, &AttackConfig::default())?;
/// assert!(outcome.accuracy > 0.9);
/// # Ok(())
/// # }
/// ```
pub fn mount_attack(
    observations: &[CategoryObservations],
    config: &AttackConfig,
) -> Result<AttackOutcome, AttackError> {
    let mut vectors = split_vectors(observations, config)?;
    let classes = observations.len();
    let dims = vectors.features.len();

    let mut confusion = vec![vec![0usize; classes]; classes];
    let mut correct = 0usize;
    match config.classifier {
        AttackClassifier::GaussianTemplate => {
            let templates = Templates::fit(&vectors.train, classes, dims);
            for (v, truth) in &vectors.test {
                let guess = templates.classify(v);
                confusion[*truth][guess] += 1;
                if guess == *truth {
                    correct += 1;
                }
            }
        }
        AttackClassifier::Lda => {
            zscore(&mut vectors.train, &mut vectors.test);
            let lda = LinearDiscriminant::fit(&vectors.train, classes, dims);
            for (v, truth) in &vectors.test {
                let guess = lda.classify(v);
                confusion[*truth][guess] += 1;
                if guess == *truth {
                    correct += 1;
                }
            }
        }
        AttackClassifier::Knn { k } => {
            zscore(&mut vectors.train, &mut vectors.test);
            for (v, truth) in &vectors.test {
                let guess = knn_classify(&vectors.train, v, k, classes);
                confusion[*truth][guess] += 1;
                if guess == *truth {
                    correct += 1;
                }
            }
        }
    }
    let test_count = vectors.test.len();
    Ok(AttackOutcome {
        accuracy: correct as f64 / test_count.max(1) as f64,
        confusion,
        test_count,
        features: vectors.features,
        classifier: config.classifier,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn obs_with_separation(delta: f64, n: usize) -> Vec<CategoryObservations> {
        (0..4)
            .map(|c| {
                let mut per_event = BTreeMap::new();
                per_event.insert(
                    HpcEvent::CacheMisses,
                    (0..n)
                        .map(|i| 1000.0 + c as f64 * delta + ((i * 13) % 17) as f64)
                        .collect(),
                );
                per_event.insert(
                    HpcEvent::Branches,
                    (0..n).map(|i| 50_000.0 + ((i * 7) % 23) as f64).collect(),
                );
                CategoryObservations {
                    category: c,
                    per_event,
                    predictions: vec![c; n],
                }
            })
            .collect()
    }

    #[test]
    fn template_attack_recovers_separated_categories() {
        let obs = obs_with_separation(100.0, 60);
        let out = mount_attack(&obs, &AttackConfig::default()).unwrap();
        assert!(out.accuracy > 0.9, "accuracy {}", out.accuracy);
        assert!(out.beats_chance_by(0.5));
        assert_eq!(out.confusion.len(), 4);
        assert_eq!(out.test_count, 4 * 30);
    }

    #[test]
    fn attack_fails_on_overlapping_categories() {
        let obs = obs_with_separation(0.0, 60);
        let out = mount_attack(&obs, &AttackConfig::default()).unwrap();
        assert!(
            out.accuracy < 0.5,
            "identical distributions should be unguessable: {}",
            out.accuracy
        );
    }

    #[test]
    fn lda_recovers_separated_categories() {
        let obs = obs_with_separation(100.0, 60);
        let out = mount_attack(
            &obs,
            &AttackConfig {
                classifier: AttackClassifier::Lda,
                ..AttackConfig::default()
            },
        )
        .unwrap();
        assert!(out.accuracy > 0.9, "accuracy {}", out.accuracy);
    }

    #[test]
    fn lda_exploits_correlated_features() {
        // Classes separated only along the *difference* of two strongly
        // correlated features: diagonal templates struggle, LDA nails it.
        let n = 80;
        let obs: Vec<CategoryObservations> = (0..2)
            .map(|c| {
                let mut per_event = BTreeMap::new();
                let common: Vec<f64> = (0..n).map(|i| ((i * 17) % 101) as f64 * 10.0).collect();
                per_event.insert(
                    HpcEvent::CacheMisses,
                    common.iter().map(|&x| x + c as f64 * 40.0).collect(),
                );
                per_event.insert(HpcEvent::Cycles, common.clone());
                CategoryObservations {
                    category: c,
                    per_event,
                    predictions: vec![c; n],
                }
            })
            .collect();
        let lda = mount_attack(
            &obs,
            &AttackConfig {
                classifier: AttackClassifier::Lda,
                ..AttackConfig::default()
            },
        )
        .unwrap();
        let diag = mount_attack(&obs, &AttackConfig::default()).unwrap();
        assert!(lda.accuracy > 0.95, "LDA accuracy {}", lda.accuracy);
        assert!(
            lda.accuracy >= diag.accuracy,
            "LDA ({}) must dominate the diagonal template ({}) here",
            lda.accuracy,
            diag.accuracy
        );
    }

    #[test]
    fn nan_observation_does_not_abort_the_attack() {
        // One corrupt counter reading in each classifier's path: the
        // attack must return an outcome (possibly degraded), never panic.
        let mut obs = obs_with_separation(100.0, 60);
        obs[1].per_event.get_mut(&HpcEvent::CacheMisses).unwrap()[3] = f64::NAN;
        for classifier in [
            AttackClassifier::GaussianTemplate,
            AttackClassifier::Lda,
            AttackClassifier::Knn { k: 5 },
        ] {
            let out = mount_attack(
                &obs,
                &AttackConfig {
                    classifier,
                    ..AttackConfig::default()
                },
            )
            .unwrap();
            assert_eq!(out.confusion.len(), 4, "{classifier:?}");
        }
    }

    #[test]
    fn matrix_inverse_roundtrip() {
        let m = vec![4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 2.0];
        let inv = invert(&m, 3);
        // M · M⁻¹ ≈ I
        for i in 0..3 {
            for j in 0..3 {
                let v: f64 = (0..3).map(|k| m[i * 3 + k] * inv[k * 3 + j]).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((v - expect).abs() < 1e-9, "({i},{j}) = {v}");
            }
        }
    }

    #[test]
    fn knn_also_works() {
        let obs = obs_with_separation(100.0, 60);
        let out = mount_attack(
            &obs,
            &AttackConfig {
                classifier: AttackClassifier::Knn { k: 5 },
                ..AttackConfig::default()
            },
        )
        .unwrap();
        assert!(out.accuracy > 0.9, "accuracy {}", out.accuracy);
    }

    #[test]
    fn accuracy_grows_with_separation() {
        let acc = |delta| {
            mount_attack(&obs_with_separation(delta, 60), &AttackConfig::default())
                .unwrap()
                .accuracy
        };
        assert!(acc(200.0) >= acc(8.0));
    }

    #[test]
    fn errors_on_degenerate_input() {
        assert!(matches!(
            mount_attack(&obs_with_separation(1.0, 60)[..1], &AttackConfig::default()),
            Err(AttackError::TooFewCategories)
        ));
        assert!(matches!(
            mount_attack(&obs_with_separation(1.0, 1), &AttackConfig::default()),
            Err(AttackError::TooFewMeasurements { .. })
        ));
    }

    #[test]
    fn display_mentions_chance() {
        let out = mount_attack(&obs_with_separation(100.0, 40), &AttackConfig::default()).unwrap();
        let text = out.to_string();
        assert!(text.contains("chance 25.0%"));
        assert!(text.contains("confusion"));
    }

    #[test]
    fn confusion_rows_sum_to_test_counts() {
        let out = mount_attack(&obs_with_separation(50.0, 40), &AttackConfig::default()).unwrap();
        let total: usize = out.confusion.iter().flatten().sum();
        assert_eq!(total, out.test_count);
    }
}
