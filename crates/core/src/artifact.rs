//! Cacheable pipeline artifacts: canonical keys and binary codecs.
//!
//! The pipeline's two expensive phases are pure functions of config
//! fields (DESIGN.md §9), which makes their outputs safe to reuse:
//!
//! - the **model artifact** — trained network, training report and
//!   held-out accuracy — keyed by everything that feeds training;
//! - one **category artifact** per monitored category — its
//!   [`CategoryObservations`] — keyed by the model inputs *plus*
//!   everything that feeds collection for that category.
//!
//! Keys digest a canonical JSON string built from the `ToJson` impls in
//! [`crate::json`]; thread settings are deliberately absent from those
//! encodings (results are bit-identical across thread counts, so a
//! different `--threads` must hit the same artifacts). Payloads ride the
//! workspace wire helpers ([`scnn_tensor::wire`]) and are framed and
//! checksummed by [`scnn_cache::ArtifactCache`] itself, so the decoders
//! here only validate structure: any inconsistency returns `None` and
//! the caller recomputes.

use crate::collect::CategoryObservations;
use crate::extract::{InferenceTrace, LayerWindow};
use crate::json::ToJson;
use crate::pipeline::ExperimentConfig;
use scnn_cache::CacheKey;
use scnn_hpc::HpcEvent;
use scnn_nn::train::TrainReport;
use scnn_nn::Network;
use scnn_tensor::wire::{ByteReader, ByteWriter};
use std::collections::BTreeMap;

/// Artifact kind slug for trained models.
pub const MODEL_KIND: &str = "model";
/// Artifact kind slug for per-category collection checkpoints.
pub const CATEGORY_KIND: &str = "obs";
/// Artifact kind slug for per-arm extraction trace corpora.
pub const TRACE_KIND: &str = "trace";

/// The canonical description of everything that determines the trained
/// model (and its bundled test accuracy): dataset synthesis, model
/// family, training hyperparameters and the master seed.
fn model_canonical(cfg: &ExperimentConfig) -> String {
    format!(
        concat!(
            "{{\"kind\":\"model\",\"dataset\":{},\"scale\":{},\"architecture\":{},",
            "\"train_per_class\":{},\"test_per_class\":{},\"train\":{},\"seed\":{}}}"
        ),
        cfg.dataset.to_json(),
        cfg.scale.to_json(),
        cfg.architecture.to_json(),
        cfg.train_per_class,
        cfg.test_per_class,
        cfg.train.to_json(),
        cfg.seed,
    )
}

/// Cache key for the model artifact of `cfg`.
pub fn model_key(cfg: &ExperimentConfig) -> CacheKey {
    CacheKey::from_canonical(&model_canonical(cfg))
}

/// Cache key for the category artifact at position `index` within
/// `cfg.categories`.
///
/// The key embeds the full model canonical (observations depend on the
/// trained network), the collection/PMU/countermeasure parameters, the
/// monitored-category list and the position — `collect_campaign` seeds
/// each campaign from the *remapped* index, so position matters, not
/// just the original class label.
pub fn category_key(cfg: &ExperimentConfig, index: usize) -> CacheKey {
    // The PMU encoding is the canonical uarch-zoo schema from
    // `crate::zoo` (every cache/TLB/predictor/noise field spelled out),
    // so two presets differing in any simulated-platform detail key
    // distinct observation artifacts — a `repro sweep` resumes per
    // preset — while equal configs written by different code paths
    // (embedded preset, `--uarch` file, Rust constructor) share keys.
    let canonical = format!(
        concat!(
            "{{\"kind\":\"obs\",\"model\":{},\"collection\":{},\"pmu\":{},",
            "\"countermeasure\":{},\"categories\":{},\"index\":{}}}"
        ),
        model_canonical(cfg),
        cfg.collection.to_json(),
        cfg.pmu.to_json(),
        cfg.countermeasure.to_json(),
        cfg.categories.to_json(),
        index,
    );
    CacheKey::from_canonical(&canonical)
}

/// Cache key for one extraction arm's trace corpus of `samples` traced
/// inferences.
///
/// The key embeds the model canonical (traces depend on the trained
/// network and its test images), the simulated platform, the active
/// countermeasure and the corpus size. Thread policy is absent: trace
/// collection is a pure function of `(config, arm)` at every thread
/// count.
pub fn trace_key(cfg: &ExperimentConfig, samples: usize) -> CacheKey {
    let canonical = format!(
        "{{\"kind\":\"trace\",\"model\":{},\"pmu\":{},\"countermeasure\":{},\"samples\":{}}}",
        model_canonical(cfg),
        cfg.pmu.to_json(),
        cfg.countermeasure.to_json(),
        samples,
    );
    CacheKey::from_canonical(&canonical)
}

/// A stable 64-bit tag over the config's countermeasure canonical JSON
/// (FNV-1a), for seeding per-arm RNG streams (PMU noise, dummy-work and
/// decoy generators) the same way the cache keys are addressed: content,
/// not arm position. Two commands that would store a trace corpus under
/// the same [`trace_key`] therefore also derive it from the same seeds,
/// so the cached bytes are identical no matter which command wrote them
/// first. Not collision-resistant — arm sets are tiny.
pub fn cm_seed_tag(cfg: &ExperimentConfig) -> u64 {
    let json = cfg.countermeasure.to_json();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in json.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes a trace corpus: per trace, its per-layer windows as four
/// little-endian `f64`s (loads, stores, branches, alu).
pub fn encode_traces(traces: &[InferenceTrace]) -> Vec<u8> {
    let mut buf = ByteWriter::new();
    buf.put_u32(traces.len() as u32);
    for trace in traces {
        buf.put_u32(trace.windows.len() as u32);
        for w in &trace.windows {
            buf.put_f64_le(w.loads);
            buf.put_f64_le(w.stores);
            buf.put_f64_le(w.branches);
            buf.put_f64_le(w.alu);
        }
    }
    buf.into_vec()
}

/// Deserializes [`encode_traces`] output; `None` on any structural
/// inconsistency.
pub fn decode_traces(payload: &[u8]) -> Option<Vec<InferenceTrace>> {
    let mut buf = ByteReader::new(payload);
    if buf.remaining() < 4 {
        return None;
    }
    let n_traces = buf.get_u32() as usize;
    let mut traces = Vec::with_capacity(n_traces.min(1 << 16));
    for _ in 0..n_traces {
        if buf.remaining() < 4 {
            return None;
        }
        let n_windows = buf.get_u32() as usize;
        if buf.remaining() / 32 < n_windows {
            return None;
        }
        let windows = (0..n_windows)
            .map(|_| LayerWindow {
                loads: buf.get_f64_le(),
                stores: buf.get_f64_le(),
                branches: buf.get_f64_le(),
                alu: buf.get_f64_le(),
            })
            .collect();
        traces.push(InferenceTrace { windows });
    }
    if buf.remaining() != 0 {
        return None;
    }
    Some(traces)
}

/// Serializes the model artifact: network bytes, per-epoch losses, final
/// training accuracy and held-out test accuracy.
pub fn encode_model(net: &Network, report: &TrainReport, test_accuracy: f64) -> Vec<u8> {
    let net_bytes = net.to_bytes();
    let mut buf = ByteWriter::with_capacity(net_bytes.len() + 64);
    buf.put_u32(net_bytes.len() as u32);
    for &b in &net_bytes {
        buf.put_u8(b);
    }
    buf.put_u32(report.epoch_losses.len() as u32);
    for &loss in &report.epoch_losses {
        buf.put_f64_le(loss);
    }
    buf.put_f64_le(report.final_train_accuracy);
    buf.put_f64_le(test_accuracy);
    buf.into_vec()
}

/// Deserializes [`encode_model`] output; `None` on any structural
/// inconsistency (including an undecodable embedded network).
pub fn decode_model(payload: &[u8]) -> Option<(Network, TrainReport, f64)> {
    let mut buf = ByteReader::new(payload);
    if buf.remaining() < 4 {
        return None;
    }
    let net_len = buf.get_u32() as usize;
    if buf.remaining() < net_len {
        return None;
    }
    let net_bytes: Vec<u8> = (0..net_len).map(|_| buf.get_u8()).collect();
    let net = Network::from_bytes(&net_bytes).ok()?;
    if buf.remaining() < 4 {
        return None;
    }
    let n_losses = buf.get_u32() as usize;
    if buf.remaining() != n_losses * 8 + 16 {
        return None;
    }
    let epoch_losses: Vec<f64> = (0..n_losses).map(|_| buf.get_f64_le()).collect();
    let final_train_accuracy = buf.get_f64_le();
    let test_accuracy = buf.get_f64_le();
    Some((
        net,
        TrainReport {
            epoch_losses,
            final_train_accuracy,
        },
        test_accuracy,
    ))
}

/// Serializes one category's collection checkpoint.
pub fn encode_category(obs: &CategoryObservations) -> Vec<u8> {
    let mut buf = ByteWriter::new();
    buf.put_u32(obs.category as u32);
    buf.put_u32(obs.per_event.len() as u32);
    for (event, series) in &obs.per_event {
        let name = event.perf_name();
        buf.put_u8(name.len() as u8);
        for &b in name.as_bytes() {
            buf.put_u8(b);
        }
        buf.put_u32(series.len() as u32);
        for &v in series {
            buf.put_f64_le(v);
        }
    }
    buf.put_u32(obs.predictions.len() as u32);
    for &p in &obs.predictions {
        buf.put_u32(p as u32);
    }
    buf.into_vec()
}

/// Deserializes [`encode_category`] output; `None` on any structural
/// inconsistency (unknown event names included).
pub fn decode_category(payload: &[u8]) -> Option<CategoryObservations> {
    let mut buf = ByteReader::new(payload);
    if buf.remaining() < 8 {
        return None;
    }
    let category = buf.get_u32() as usize;
    let n_events = buf.get_u32() as usize;
    let mut per_event: BTreeMap<HpcEvent, Vec<f64>> = BTreeMap::new();
    for _ in 0..n_events {
        if buf.remaining() < 1 {
            return None;
        }
        let name_len = buf.get_u8() as usize;
        if buf.remaining() < name_len {
            return None;
        }
        let name_bytes: Vec<u8> = (0..name_len).map(|_| buf.get_u8()).collect();
        let name = String::from_utf8(name_bytes).ok()?;
        let event: HpcEvent = name.parse().ok()?;
        if buf.remaining() < 4 {
            return None;
        }
        let n = buf.get_u32() as usize;
        if buf.remaining() / 8 < n {
            return None;
        }
        let series: Vec<f64> = (0..n).map(|_| buf.get_f64_le()).collect();
        if per_event.insert(event, series).is_some() {
            return None; // duplicate event record
        }
    }
    if buf.remaining() < 4 {
        return None;
    }
    let n_pred = buf.get_u32() as usize;
    if buf.remaining() != n_pred * 4 {
        return None;
    }
    let predictions: Vec<usize> = (0..n_pred).map(|_| buf.get_u32() as usize).collect();
    Some(CategoryObservations {
        category,
        per_event,
        predictions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::countermeasure::Countermeasure;
    use crate::pipeline::DatasetKind;
    use scnn_nn::models;
    use scnn_par::Threads;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::quick(DatasetKind::Mnist)
    }

    #[test]
    fn model_key_tracks_training_inputs_only() {
        let base = model_key(&cfg());
        assert_eq!(base, model_key(&cfg()), "pure function of the config");

        // Inside the key: anything that changes the trained network.
        assert_ne!(base, model_key(&cfg().seed(1)));
        assert_ne!(base, model_key(&cfg().epochs(9)));
        assert_ne!(
            base,
            model_key(&ExperimentConfig::quick(DatasetKind::Cifar10))
        );

        // Outside the key: thread policy, collection size, monitored
        // categories, countermeasure — none affect training.
        assert_eq!(base, model_key(&cfg().threads(Threads::Count(7))));
        assert_eq!(base, model_key(&cfg().samples(99)));
        assert_eq!(base, model_key(&cfg().categories(vec![5, 6])));
        assert_eq!(
            base,
            model_key(&cfg().countermeasure(Countermeasure::ConstantTime))
        );
    }

    #[test]
    fn category_key_tracks_collection_inputs() {
        let base = category_key(&cfg(), 0);
        assert_eq!(base, category_key(&cfg(), 0));
        assert_ne!(base, category_key(&cfg(), 1), "position seeds the campaign");
        assert_ne!(base, category_key(&cfg().samples(99), 0));
        assert_ne!(base, category_key(&cfg().categories(vec![5, 6]), 0));
        assert_ne!(
            base,
            category_key(&cfg().countermeasure(Countermeasure::ConstantTime), 0)
        );
        assert_ne!(
            base,
            category_key(&cfg().seed(1), 0),
            "new model, new readings"
        );
        assert_eq!(base, category_key(&cfg().threads(Threads::Count(7)), 0));
    }

    #[test]
    fn uarch_presets_fragment_category_keys_but_share_the_model() {
        // The sweep's cache contract: every zoo preset reuses one trained
        // model but measures (and checkpoints) its own observations.
        let presets = crate::zoo::zoo();
        let mut obs_keys = Vec::new();
        for preset in &presets {
            let mut c = cfg();
            c.pmu.core = preset.core;
            assert_eq!(
                model_key(&cfg()),
                model_key(&c),
                "training is uarch-independent: {}",
                preset.name
            );
            obs_keys.push(category_key(&c, 0));
        }
        for i in 0..obs_keys.len() {
            for j in (i + 1)..obs_keys.len() {
                assert_ne!(
                    obs_keys[i], obs_keys[j],
                    "{} and {} must key distinct observation artifacts",
                    presets[i].name, presets[j].name
                );
            }
        }
    }

    #[test]
    fn trace_key_tracks_measurement_inputs() {
        let base = trace_key(&cfg(), 12);
        assert_eq!(base, trace_key(&cfg(), 12), "pure function of the config");
        assert_ne!(base, trace_key(&cfg(), 13), "corpus size is in the key");
        assert_ne!(base, trace_key(&cfg().seed(1), 12), "new model, new traces");
        assert_ne!(
            base,
            trace_key(&cfg().countermeasure(Countermeasure::ConstantTime), 12)
        );
        let mut other_uarch = cfg();
        other_uarch.pmu.core = crate::zoo::zoo()[1].core;
        assert_ne!(base, trace_key(&other_uarch, 12));
        assert_eq!(base, trace_key(&cfg().threads(Threads::Count(7)), 12));
        assert_eq!(
            base,
            trace_key(&cfg().samples(99), 12),
            "samples argument, not collection config"
        );
    }

    #[test]
    fn countermeasure_variants_never_alias_cache_keys() {
        // Every frontier arm (and every dummy-event volume) must key its
        // own observation and trace artifacts: aliasing would let one
        // arm's cached measurements masquerade as another's.
        let arms = [
            None,
            Some(Countermeasure::ConstantTime),
            Some(Countermeasure::NoiseInjection {
                dummy_events: 20_000,
            }),
            Some(Countermeasure::NoiseInjection {
                dummy_events: 30_000,
            }),
            Some(Countermeasure::Combined {
                dummy_events: 20_000,
            }),
            Some(Countermeasure::Shuffle),
            Some(Countermeasure::DecoyInference { decoys: 3 }),
            Some(Countermeasure::DecoyInference { decoys: 4 }),
            Some(Countermeasure::ObliviousShape),
            Some(Countermeasure::CalibratedNoise {
                target_t: 1.5,
                dummy_events: 4_000,
            }),
            Some(Countermeasure::CalibratedNoise {
                target_t: 1.5,
                dummy_events: 8_000,
            }),
        ];
        let keyed: Vec<_> = arms
            .iter()
            .map(|cm| {
                let mut c = cfg();
                c.countermeasure = *cm;
                (category_key(&c, 0), trace_key(&c, 12), cm_seed_tag(&c))
            })
            .collect();
        for i in 0..keyed.len() {
            for j in (i + 1)..keyed.len() {
                assert_ne!(
                    keyed[i].0, keyed[j].0,
                    "obs alias: {:?} {:?}",
                    arms[i], arms[j]
                );
                assert_ne!(
                    keyed[i].1, keyed[j].1,
                    "trace alias: {:?} {:?}",
                    arms[i], arms[j]
                );
                assert_ne!(
                    keyed[i].2, keyed[j].2,
                    "seed alias: {:?} {:?}",
                    arms[i], arms[j]
                );
            }
        }
    }

    #[test]
    fn cm_seed_tag_is_content_addressed() {
        // Pure function of the countermeasure alone: model seed, samples
        // and thread policy do not move it.
        let base = cm_seed_tag(&cfg());
        assert_eq!(base, cm_seed_tag(&cfg().seed(1)));
        assert_eq!(base, cm_seed_tag(&cfg().threads(Threads::Count(7))));
        assert_ne!(
            base,
            cm_seed_tag(&cfg().countermeasure(Countermeasure::Shuffle))
        );
    }

    #[test]
    fn trace_artifact_roundtrips() {
        let traces = vec![
            InferenceTrace {
                windows: vec![
                    LayerWindow {
                        loads: 874.0,
                        stores: 410.0,
                        branches: 260.0,
                        alu: 954.5,
                    },
                    LayerWindow::default(),
                ],
            },
            InferenceTrace { windows: vec![] },
        ];
        let restored = decode_traces(&encode_traces(&traces)).unwrap();
        assert_eq!(restored, traces);
    }

    #[test]
    fn trace_artifact_rejects_truncation_and_trailing_bytes() {
        let traces = vec![InferenceTrace {
            windows: vec![LayerWindow {
                loads: 1.0,
                stores: 2.0,
                branches: 3.0,
                alu: 4.0,
            }],
        }];
        let payload = encode_traces(&traces);
        for cut in 0..payload.len() {
            assert!(decode_traces(&payload[..cut]).is_none(), "cut at {cut}");
        }
        let mut padded = payload.clone();
        padded.push(0);
        assert!(decode_traces(&padded).is_none(), "trailing byte");
    }

    #[test]
    fn model_artifact_roundtrips() {
        let net = models::tiny_cnn(5);
        let report = TrainReport {
            epoch_losses: vec![2.3, 1.1, 0.6],
            final_train_accuracy: 0.875,
        };
        let payload = encode_model(&net, &report, 0.75);
        let (restored, r2, acc) = decode_model(&payload).unwrap();
        assert_eq!(restored.to_bytes(), net.to_bytes());
        assert_eq!(r2, report);
        assert_eq!(acc, 0.75);
    }

    #[test]
    fn model_artifact_rejects_truncation_everywhere() {
        let payload = encode_model(
            &models::tiny_cnn(5),
            &TrainReport {
                epoch_losses: vec![0.5],
                final_train_accuracy: 1.0,
            },
            0.5,
        );
        for cut in 0..payload.len() {
            assert!(decode_model(&payload[..cut]).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn category_artifact_roundtrips() {
        let mut per_event = BTreeMap::new();
        per_event.insert(HpcEvent::CacheMisses, vec![1.5, 2.5, f64::NAN]);
        per_event.insert(HpcEvent::Branches, vec![100.0]);
        let obs = CategoryObservations {
            category: 3,
            per_event,
            predictions: vec![3, 3, 1],
        };
        let restored = decode_category(&encode_category(&obs)).unwrap();
        assert_eq!(restored.category, obs.category);
        assert_eq!(restored.predictions, obs.predictions);
        assert_eq!(
            restored.series(HpcEvent::Branches),
            obs.series(HpcEvent::Branches)
        );
        // NaN payload bits survive bit-for-bit (PartialEq would hide it).
        assert!(restored.series(HpcEvent::CacheMisses).unwrap()[2].is_nan());
    }

    #[test]
    fn category_artifact_rejects_truncation_everywhere() {
        let mut per_event = BTreeMap::new();
        per_event.insert(HpcEvent::Cycles, vec![7.0, 8.0]);
        let obs = CategoryObservations {
            category: 0,
            per_event,
            predictions: vec![0, 0],
        };
        let payload = encode_category(&obs);
        for cut in 0..payload.len() {
            assert!(decode_category(&payload[..cut]).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn category_artifact_rejects_unknown_event_names() {
        let mut buf = ByteWriter::new();
        buf.put_u32(0); // category
        buf.put_u32(1); // one event
        let name = b"no-such-event";
        buf.put_u8(name.len() as u8);
        for &b in name {
            buf.put_u8(b);
        }
        buf.put_u32(0); // empty series
        buf.put_u32(0); // no predictions
        assert!(decode_category(buf.as_slice()).is_none());
    }
}
