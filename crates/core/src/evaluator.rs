//! The paper's evaluator (§4): pairwise t-tests over per-category HPC
//! distributions, raising an alarm when any event distinguishes any pair
//! of categories.

use crate::collect::CategoryObservations;
use scnn_hpc::HpcEvent;
use scnn_par::{Pool, Threads};
use scnn_stats::moments::centered_squares;
use scnn_stats::{DecisionRule, PairResult, PairwiseLeakage, Summary, TTestError, TTestKind};
use std::error::Error;
use std::fmt;

/// Evaluator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvaluatorConfig {
    /// t-test flavour (the paper just says "t-test"; Welch is the default).
    pub kind: TTestKind,
    /// Decision rule; the paper rejects at 95% confidence, i.e.
    /// `PValue { alpha: 0.05 }`.
    pub rule: DecisionRule,
    /// When set, additionally compute Holm–Bonferroni-corrected verdicts
    /// at this family-wise error rate. The paper tests each pair
    /// uncorrected, but six simultaneous tests at α = 0.05 carry a ~26%
    /// family-wise false-alarm rate — material for a tool whose output is
    /// an alarm.
    pub holm_alpha: Option<f64>,
    /// Also run the second-order (variance) t-test per pair — catches
    /// noise-injection countermeasures that equalise means but not
    /// spreads.
    pub second_order: bool,
    /// Worker threads for the pairwise matrix. Every cell is a pure
    /// function of two per-category summaries and cells are assembled in
    /// `(event, i, j)` order, so the report is identical at every thread
    /// count. Not part of the serialized report.
    pub threads: Threads,
}

impl Default for EvaluatorConfig {
    fn default() -> Self {
        EvaluatorConfig {
            kind: TTestKind::Welch,
            rule: DecisionRule::PValue { alpha: 0.05 },
            holm_alpha: None,
            second_order: false,
            threads: Threads::Auto,
        }
    }
}

/// Error from an evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvaluateError {
    /// Fewer than two categories were observed.
    TooFewCategories {
        /// Categories supplied.
        got: usize,
    },
    /// An event was not measured for every category.
    MissingEvent {
        /// The event.
        event: HpcEvent,
        /// The category lacking it.
        category: usize,
    },
    /// A t-test failed (degenerate samples).
    Stats(TTestError),
}

impl fmt::Display for EvaluateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvaluateError::TooFewCategories { got } => {
                write!(f, "need at least 2 categories, got {got}")
            }
            EvaluateError::MissingEvent { event, category } => {
                write!(f, "event {event} missing for category {category}")
            }
            EvaluateError::Stats(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl Error for EvaluateError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EvaluateError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TTestError> for EvaluateError {
    fn from(e: TTestError) -> Self {
        EvaluateError::Stats(e)
    }
}

/// Leakage verdict for one HPC event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventLeakage {
    /// The event.
    pub event: HpcEvent,
    /// Per-category descriptive summaries (indexed by category).
    pub summaries: Vec<Summary>,
    /// The pairwise t-test matrix with verdicts.
    pub pairwise: PairwiseLeakage,
    /// Holm-corrected verdicts, when requested.
    pub holm: Option<PairwiseLeakage>,
    /// Second-order (variance) pairwise matrix, when requested.
    pub second_order: Option<PairwiseLeakage>,
}

impl EventLeakage {
    /// True when this event distinguishes at least one pair.
    pub fn leaks(&self) -> bool {
        self.pairwise.leaks()
    }
}

/// The evaluator's alarm state.
#[derive(Debug, Clone, PartialEq)]
pub struct Alarm {
    events: Vec<HpcEvent>,
}

impl Alarm {
    /// True when the alarm is raised (some event leaks).
    pub fn raised(&self) -> bool {
        !self.events.is_empty()
    }

    /// The events that triggered it.
    pub fn triggering_events(&self) -> &[HpcEvent] {
        &self.events
    }
}

impl fmt::Display for Alarm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.raised() {
            write!(f, "ALARM: information leakage via ")?;
            for (i, e) in self.events.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e}")?;
            }
            Ok(())
        } else {
            write!(f, "no leakage detected")
        }
    }
}

/// Full evaluation result over all monitored events.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageReport {
    /// Per-event leakage assessments, in measurement order.
    pub per_event: Vec<EventLeakage>,
    /// Number of categories evaluated.
    pub categories: usize,
    /// Configuration used.
    pub config: EvaluatorConfig,
}

impl LeakageReport {
    /// The alarm implied by the per-event verdicts.
    pub fn alarm(&self) -> Alarm {
        Alarm {
            events: self
                .per_event
                .iter()
                .filter(|e| e.leaks())
                .map(|e| e.event)
                .collect(),
        }
    }

    /// The assessment of one event, if present.
    pub fn event(&self, event: HpcEvent) -> Option<&EventLeakage> {
        self.per_event.iter().find(|e| e.event == event)
    }
}

/// The evaluator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Evaluator {
    config: EvaluatorConfig,
}

impl Evaluator {
    /// Creates an evaluator.
    pub fn new(config: EvaluatorConfig) -> Self {
        Evaluator { config }
    }

    /// Runs the paper's hypothesis-testing step over collected
    /// observations.
    ///
    /// # Errors
    ///
    /// Returns [`EvaluateError`] when fewer than two categories are
    /// supplied, an event series is missing, or a t-test degenerates.
    pub fn evaluate(
        &self,
        observations: &[CategoryObservations],
    ) -> Result<LeakageReport, EvaluateError> {
        // Observation-only span/counters; the report never depends on
        // whether a recorder is installed.
        let _span = scnn_obs::Span::enter("evaluate.report");
        if observations.len() < 2 {
            return Err(EvaluateError::TooFewCategories {
                got: observations.len(),
            });
        }
        // Events come from the first category's map; every category must
        // have every event.
        let events: Vec<HpcEvent> = observations[0].per_event.keys().copied().collect();
        let k = observations.len();

        // Per-event summaries (and, when requested, summaries of the
        // centered squares for the second-order test). Cheap single pass;
        // the quadratic work is the pairwise matrix below.
        let mut first: Vec<Vec<Summary>> = Vec::with_capacity(events.len());
        let mut second: Vec<Vec<Summary>> = Vec::new();
        for &event in &events {
            let mut summaries = Vec::with_capacity(k);
            for obs in observations {
                let series = obs.series(event).ok_or(EvaluateError::MissingEvent {
                    event,
                    category: obs.category,
                })?;
                summaries.push(series.iter().copied().collect::<Summary>());
            }
            first.push(summaries);
            if self.config.second_order {
                second.push(
                    observations
                        .iter()
                        .map(|obs| {
                            centered_squares(obs.series(event).unwrap_or(&[]))
                                .iter()
                                .copied()
                                .collect::<Summary>()
                        })
                        .collect(),
                );
            }
        }

        // Every cell of every matrix is a pure function of two summaries,
        // so all cells fan out as one flat job list. Results come back in
        // job order, which makes the assembly below — and therefore the
        // whole report — independent of the thread count.
        let mut jobs: Vec<(usize, bool, usize, usize)> = Vec::new();
        for e in 0..events.len() {
            for i in 0..k {
                for j in (i + 1)..k {
                    jobs.push((e, false, i, j));
                    if self.config.second_order {
                        jobs.push((e, true, i, j));
                    }
                }
            }
        }
        scnn_obs::counter_add("evaluate.ttests", jobs.len() as u64);
        let matrix_span = scnn_obs::Span::enter("evaluate.matrix");
        // One t-test cell is microseconds of special-function work, while
        // a cross-thread dispatch costs comparable time — per-cell jobs
        // measured ~6× slower than sequential (BENCH_parallel.json,
        // evaluate_ms). So the unit of parallelism is a contiguous
        // CELL_CHUNK-cell group: coarse enough to amortise dispatch,
        // ordered so the flatten below reassembles exact job order and
        // the report stays bit-identical across thread counts. Matrices
        // under MIN_PARALLEL_GROUPS groups run the same closure inline.
        const CELL_CHUNK: usize = 64;
        const MIN_PARALLEL_GROUPS: usize = 8;
        let groups: Vec<Vec<(usize, bool, usize, usize)>> =
            jobs.chunks(CELL_CHUNK).map(<[_]>::to_vec).collect();
        let pool = Pool::new(self.config.threads).with_min_jobs(MIN_PARALLEL_GROUPS);
        let (kind, rule) = (self.config.kind, self.config.rule);
        let cell_groups = pool.par_map(groups, |group| {
            group
                .into_iter()
                .map(|(e, is_second, i, j)| {
                    let summaries = if is_second { &second[e] } else { &first[e] };
                    PairResult::compute(summaries, i, j, kind, rule)
                })
                .collect::<Vec<_>>()
        });
        drop(matrix_span);

        let mut cells = cell_groups.into_iter().flatten();
        let mut per_event = Vec::with_capacity(events.len());
        for (event, summaries) in events.iter().copied().zip(first) {
            let mut pairs = Vec::with_capacity(k * (k - 1) / 2);
            let mut second_pairs = Vec::new();
            for i in 0..k {
                for _ in (i + 1)..k {
                    pairs.push(cells.next().expect("one cell per job")?);
                    if self.config.second_order {
                        second_pairs.push(cells.next().expect("one cell per job")?);
                    }
                }
            }
            let pairwise = PairwiseLeakage {
                pairs,
                categories: k,
                rule,
            };
            let holm = self
                .config
                .holm_alpha
                .map(|alpha| pairwise.holm_corrected(alpha));
            let second_order = self.config.second_order.then_some(PairwiseLeakage {
                pairs: second_pairs,
                categories: k,
                rule,
            });
            per_event.push(EventLeakage {
                event,
                summaries,
                pairwise,
                holm,
                second_order,
            });
        }
        Ok(LeakageReport {
            per_event,
            categories: k,
            config: self.config,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// Builds observations with controlled per-category means.
    fn synth_obs(event_means: &[(HpcEvent, Vec<f64>)], n: usize) -> Vec<CategoryObservations> {
        let categories = event_means[0].1.len();
        (0..categories)
            .map(|c| {
                let mut per_event = BTreeMap::new();
                for (event, means) in event_means {
                    // Deterministic spread ±2 around the mean.
                    let series: Vec<f64> =
                        (0..n).map(|i| means[c] + ((i % 5) as f64 - 2.0)).collect();
                    per_event.insert(*event, series);
                }
                CategoryObservations {
                    category: c,
                    per_event,
                    predictions: vec![c; n],
                }
            })
            .collect()
    }

    #[test]
    fn separated_event_raises_alarm() {
        let obs = synth_obs(
            &[
                (HpcEvent::CacheMisses, vec![100.0, 200.0, 300.0, 400.0]),
                (HpcEvent::Branches, vec![5000.0, 5000.1, 5000.0, 5000.1]),
            ],
            50,
        );
        let report = Evaluator::default().evaluate(&obs).unwrap();
        let alarm = report.alarm();
        assert!(alarm.raised());
        assert!(alarm.triggering_events().contains(&HpcEvent::CacheMisses));
        let cm = report.event(HpcEvent::CacheMisses).unwrap();
        assert!(cm.pairwise.fully_distinguishable());
        let br = report.event(HpcEvent::Branches).unwrap();
        assert!(!br.pairwise.fully_distinguishable());
        assert!(alarm.to_string().contains("cache-misses"));
    }

    #[test]
    fn identical_distributions_stay_quiet() {
        let obs = synth_obs(&[(HpcEvent::Branches, vec![100.0, 100.0, 100.0])], 40);
        let report = Evaluator::default().evaluate(&obs).unwrap();
        assert!(!report.alarm().raised());
        assert_eq!(report.alarm().to_string(), "no leakage detected");
    }

    #[test]
    fn too_few_categories() {
        let obs = synth_obs(&[(HpcEvent::Cycles, vec![1.0])], 10);
        assert!(matches!(
            Evaluator::default().evaluate(&obs),
            Err(EvaluateError::TooFewCategories { got: 1 })
        ));
    }

    #[test]
    fn missing_event_detected() {
        let mut obs = synth_obs(&[(HpcEvent::Cycles, vec![1.0, 2.0])], 10);
        obs[1].per_event.clear();
        assert!(matches!(
            Evaluator::default().evaluate(&obs),
            Err(EvaluateError::MissingEvent { .. })
        ));
    }

    #[test]
    fn summaries_track_categories() {
        let obs = synth_obs(&[(HpcEvent::CacheMisses, vec![10.0, 50.0])], 30);
        let report = Evaluator::default().evaluate(&obs).unwrap();
        let ev = report.event(HpcEvent::CacheMisses).unwrap();
        assert_eq!(ev.summaries.len(), 2);
        assert!((ev.summaries[0].mean() - 10.0).abs() < 1.0);
        assert!((ev.summaries[1].mean() - 50.0).abs() < 1.0);
    }

    #[test]
    fn holm_correction_is_conservative() {
        let obs = synth_obs(
            &[(HpcEvent::CacheMisses, vec![100.0, 103.0, 200.0, 300.0])],
            40,
        );
        let report = Evaluator::new(EvaluatorConfig {
            holm_alpha: Some(0.05),
            ..EvaluatorConfig::default()
        })
        .evaluate(&obs)
        .unwrap();
        let ev = report.event(HpcEvent::CacheMisses).unwrap();
        let holm = ev.holm.as_ref().unwrap();
        assert!(
            holm.leak_count() <= ev.pairwise.leak_count(),
            "corrected verdicts never exceed raw verdicts"
        );
    }

    #[test]
    fn second_order_detects_variance_leak() {
        // Two categories with identical means but different spreads: the
        // first-order test is blind, the second-order test fires.
        let n = 80;
        let make = |scale: f64| -> Vec<f64> {
            (0..n)
                .map(|i| 1000.0 + ((i % 13) as f64 - 6.0) * scale)
                .collect()
        };
        let mut obs = synth_obs(&[(HpcEvent::CacheMisses, vec![0.0, 0.0])], n);
        obs[0].per_event.insert(HpcEvent::CacheMisses, make(1.0));
        obs[1].per_event.insert(HpcEvent::CacheMisses, make(6.0));
        let report = Evaluator::new(EvaluatorConfig {
            second_order: true,
            ..EvaluatorConfig::default()
        })
        .evaluate(&obs)
        .unwrap();
        let ev = report.event(HpcEvent::CacheMisses).unwrap();
        assert!(!ev.pairwise.leaks(), "first order must be blind here");
        assert!(
            ev.second_order.as_ref().unwrap().leaks(),
            "second order must catch the variance difference"
        );
    }

    #[test]
    fn report_identical_across_thread_counts() {
        let obs = synth_obs(
            &[
                (HpcEvent::CacheMisses, vec![100.0, 200.0, 300.0, 400.0]),
                (HpcEvent::Branches, vec![5000.0, 5000.1, 5000.0, 5000.1]),
            ],
            50,
        );
        let run = |threads: Threads| {
            Evaluator::new(EvaluatorConfig {
                holm_alpha: Some(0.05),
                second_order: true,
                threads,
                ..EvaluatorConfig::default()
            })
            .evaluate(&obs)
            .unwrap()
        };
        let seq = run(Threads::Count(1));
        let par = run(Threads::Count(4));
        // The thread knob itself differs inside `config`; everything the
        // report derives from the data must be bit-identical.
        assert_eq!(seq.per_event, par.per_event);
        assert_eq!(seq.categories, par.categories);
        assert_eq!(seq.alarm(), par.alarm());
    }

    #[test]
    fn parallel_matches_sequential_assess() {
        // The fan-out must assemble exactly the matrix the reference
        // PairwiseLeakage::assess loop produces.
        let obs = synth_obs(&[(HpcEvent::CacheMisses, vec![10.0, 50.0, 90.0])], 30);
        let report = Evaluator::new(EvaluatorConfig {
            threads: Threads::Count(3),
            ..EvaluatorConfig::default()
        })
        .evaluate(&obs)
        .unwrap();
        let ev = report.event(HpcEvent::CacheMisses).unwrap();
        let reference = PairwiseLeakage::assess(
            &ev.summaries,
            TTestKind::Welch,
            DecisionRule::PValue { alpha: 0.05 },
        )
        .unwrap();
        assert_eq!(ev.pairwise, reference);
    }

    #[test]
    fn tvla_rule_respected() {
        let obs = synth_obs(&[(HpcEvent::CacheMisses, vec![100.0, 101.5])], 200);
        // Small shift: significant by p-value at n=200, but |t| < 4.5?
        let p_report = Evaluator::new(EvaluatorConfig {
            kind: TTestKind::Welch,
            rule: DecisionRule::PValue { alpha: 0.05 },
            ..EvaluatorConfig::default()
        })
        .evaluate(&obs)
        .unwrap();
        let t_report = Evaluator::new(EvaluatorConfig {
            kind: TTestKind::Welch,
            rule: DecisionRule::TThreshold { threshold: 25.0 },
            ..EvaluatorConfig::default()
        })
        .evaluate(&obs)
        .unwrap();
        assert!(p_report.alarm().raised());
        assert!(!t_report.alarm().raised(), "stricter threshold stays quiet");
    }
}
