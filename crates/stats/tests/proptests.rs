//! Property-based tests for the statistics substrate: the t-tests that
//! decide the paper's leakage verdicts must be numerically trustworthy on
//! arbitrary inputs.

use proptest::prelude::*;
use scnn_stats::{
    ks_test, mann_whitney_u, quantile, special, t_test, Histogram, StudentT, Summary, TTestKind,
};

fn sample() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e5f64..1e5, 2..60)
}

proptest! {
    #[test]
    fn welford_matches_two_pass(data in sample()) {
        let s: Summary = data.iter().copied().collect();
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() <= mean.abs().max(1.0) * 1e-9);
        prop_assert!((s.sample_variance() - var).abs() <= var.abs().max(1.0) * 1e-6);
        prop_assert!(s.min() <= s.mean() + 1e-9 && s.mean() <= s.max() + 1e-9);
    }

    #[test]
    fn summary_merge_is_concatenation(a in sample(), b in sample()) {
        let mut merged: Summary = a.iter().copied().collect();
        merged.merge(&b.iter().copied().collect());
        let whole: Summary = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert!((merged.mean() - whole.mean()).abs() <= whole.mean().abs().max(1.0) * 1e-9);
        prop_assert!(
            (merged.sample_variance() - whole.sample_variance()).abs()
                <= whole.sample_variance().abs().max(1.0) * 1e-6
        );
    }

    #[test]
    fn t_test_p_is_probability_and_antisymmetric(a in sample(), b in sample()) {
        for kind in [TTestKind::Welch, TTestKind::Pooled] {
            if let (Ok(r1), Ok(r2)) = (t_test(&a, &b, kind), t_test(&b, &a, kind)) {
                prop_assert!((0.0..=1.0).contains(&r1.p), "p = {}", r1.p);
                prop_assert!((r1.t + r2.t).abs() <= r1.t.abs().max(1.0) * 1e-9);
                prop_assert!((r1.p - r2.p).abs() <= 1e-9);
            }
        }
    }

    #[test]
    fn shifting_one_sample_monotonically_grows_t(data in sample(), shift in 1.0f64..1e4) {
        let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
        let more: Vec<f64> = data.iter().map(|x| x + 2.0 * shift).collect();
        if let (Ok(r1), Ok(r2)) = (
            t_test(&shifted, &data, TTestKind::Welch),
            t_test(&more, &data, TTestKind::Welch),
        ) {
            prop_assert!(r2.t >= r1.t - 1e-9, "bigger shift, bigger t: {} vs {}", r1.t, r2.t);
        }
    }

    #[test]
    fn student_cdf_monotone_and_bounded(nu in 1.0f64..200.0, x in -50.0f64..50.0) {
        let d = StudentT::new(nu);
        let c = d.cdf(x);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!(d.cdf(x + 1.0) >= c - 1e-12);
        let p = d.two_tailed_p(x);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn betai_bounded_and_monotone_in_x(a in 0.2f64..50.0, b in 0.2f64..50.0, x in 0.0f64..1.0) {
        let v = special::betai(a, b, x);
        prop_assert!((0.0..=1.0).contains(&v), "betai({a},{b},{x}) = {v}");
        let v2 = special::betai(a, b, (x + 0.05).min(1.0));
        prop_assert!(v2 >= v - 1e-9);
    }

    #[test]
    fn histogram_conserves_mass(data in sample(), bins in 1usize..30) {
        let h = Histogram::from_data(&data, bins, None).unwrap();
        let counted: u64 = h.counts().iter().sum::<u64>() + h.underflow() + h.overflow();
        prop_assert_eq!(counted, data.len() as u64);
        prop_assert_eq!(h.total(), data.len() as u64);
    }

    #[test]
    fn quantiles_are_ordered(data in sample()) {
        let q25 = quantile(&data, 0.25).unwrap();
        let q50 = quantile(&data, 0.50).unwrap();
        let q75 = quantile(&data, 0.75).unwrap();
        prop_assert!(q25 <= q50 && q50 <= q75);
        let min = data.iter().copied().fold(f64::INFINITY, f64::min);
        let max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(min <= q25 && q75 <= max);
    }

    #[test]
    fn rank_tests_give_probabilities(a in sample(), b in sample()) {
        let mwu = mann_whitney_u(&a, &b).unwrap();
        prop_assert!((0.0..=1.0).contains(&mwu.p));
        let ks = ks_test(&a, &b).unwrap();
        prop_assert!((0.0..=1.0).contains(&ks.p));
        prop_assert!((0.0..=1.0).contains(&ks.d));
    }

    #[test]
    fn identical_samples_never_reject(data in sample()) {
        if let Ok(r) = t_test(&data, &data, TTestKind::Welch) {
            prop_assert!(!r.rejects_null(0.05), "t = {}, p = {}", r.t, r.p);
        }
        let ks = ks_test(&data, &data).unwrap();
        prop_assert_eq!(ks.d, 0.0);
    }
}
