//! Property-based tests for the statistics substrate: the t-tests that
//! decide the paper's leakage verdicts must be numerically trustworthy on
//! arbitrary inputs.
//!
//! Each property runs over `CASES` deterministically generated inputs
//! from a per-test seeded [`ChaCha8Rng`]; a failing case prints its index
//! and reproduces exactly.

use scnn_rng::{ChaCha8Rng, Rng, SeedableRng};
use scnn_stats::{
    ks_test, mann_whitney_u, quantile, special, t_test, Histogram, StudentT, Summary, TTestKind,
};

const CASES: usize = 256;

fn sample(rng: &mut ChaCha8Rng) -> Vec<f64> {
    let len = rng.gen_range(2usize..60);
    (0..len).map(|_| rng.gen_range(-1e5f64..1e5)).collect()
}

#[test]
fn welford_matches_two_pass() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x57a701);
    for case in 0..CASES {
        let data = sample(&mut rng);
        let s: Summary = data.iter().copied().collect();
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert!(
            (s.mean() - mean).abs() <= mean.abs().max(1.0) * 1e-9,
            "case {case}"
        );
        assert!(
            (s.sample_variance() - var).abs() <= var.abs().max(1.0) * 1e-6,
            "case {case}"
        );
        assert!(
            s.min() <= s.mean() + 1e-9 && s.mean() <= s.max() + 1e-9,
            "case {case}"
        );
    }
}

#[test]
fn summary_merge_is_concatenation() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x57a702);
    for case in 0..CASES {
        let a = sample(&mut rng);
        let b = sample(&mut rng);
        let mut merged: Summary = a.iter().copied().collect();
        merged.merge(&b.iter().copied().collect());
        let whole: Summary = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(merged.count(), whole.count(), "case {case}");
        assert!(
            (merged.mean() - whole.mean()).abs() <= whole.mean().abs().max(1.0) * 1e-9,
            "case {case}"
        );
        assert!(
            (merged.sample_variance() - whole.sample_variance()).abs()
                <= whole.sample_variance().abs().max(1.0) * 1e-6,
            "case {case}"
        );
    }
}

#[test]
fn t_test_p_is_probability_and_antisymmetric() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x57a703);
    for case in 0..CASES {
        let a = sample(&mut rng);
        let b = sample(&mut rng);
        for kind in [TTestKind::Welch, TTestKind::Pooled] {
            if let (Ok(r1), Ok(r2)) = (t_test(&a, &b, kind), t_test(&b, &a, kind)) {
                assert!((0.0..=1.0).contains(&r1.p), "case {case}: p = {}", r1.p);
                assert!(
                    (r1.t + r2.t).abs() <= r1.t.abs().max(1.0) * 1e-9,
                    "case {case}"
                );
                assert!((r1.p - r2.p).abs() <= 1e-9, "case {case}");
            }
        }
    }
}

#[test]
fn shifting_one_sample_monotonically_grows_t() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x57a704);
    for case in 0..CASES {
        let data = sample(&mut rng);
        let shift = rng.gen_range(1.0f64..1e4);
        let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
        let more: Vec<f64> = data.iter().map(|x| x + 2.0 * shift).collect();
        if let (Ok(r1), Ok(r2)) = (
            t_test(&shifted, &data, TTestKind::Welch),
            t_test(&more, &data, TTestKind::Welch),
        ) {
            assert!(
                r2.t >= r1.t - 1e-9,
                "case {case}: bigger shift, bigger t: {} vs {}",
                r1.t,
                r2.t
            );
        }
    }
}

#[test]
fn student_cdf_monotone_and_bounded() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x57a705);
    for case in 0..CASES {
        let nu = rng.gen_range(1.0f64..200.0);
        let x = rng.gen_range(-50.0f64..50.0);
        let d = StudentT::new(nu);
        let c = d.cdf(x);
        assert!((0.0..=1.0).contains(&c), "case {case}");
        assert!(d.cdf(x + 1.0) >= c - 1e-12, "case {case}");
        let p = d.two_tailed_p(x);
        assert!((0.0..=1.0).contains(&p), "case {case}");
    }
}

#[test]
fn betai_bounded_and_monotone_in_x() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x57a706);
    for case in 0..CASES {
        let a = rng.gen_range(0.2f64..50.0);
        let b = rng.gen_range(0.2f64..50.0);
        let x = rng.gen_range(0.0f64..1.0);
        let v = special::betai(a, b, x);
        assert!(
            (0.0..=1.0).contains(&v),
            "case {case}: betai({a},{b},{x}) = {v}"
        );
        let v2 = special::betai(a, b, (x + 0.05).min(1.0));
        assert!(v2 >= v - 1e-9, "case {case}");
    }
}

#[test]
fn histogram_conserves_mass() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x57a707);
    for case in 0..CASES {
        let data = sample(&mut rng);
        let bins = rng.gen_range(1usize..30);
        let h = Histogram::from_data(&data, bins, None).unwrap();
        let counted: u64 = h.counts().iter().sum::<u64>() + h.underflow() + h.overflow();
        assert_eq!(counted, data.len() as u64, "case {case}");
        assert_eq!(h.total(), data.len() as u64, "case {case}");
    }
}

#[test]
fn quantiles_are_ordered() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x57a708);
    for case in 0..CASES {
        let data = sample(&mut rng);
        let q25 = quantile(&data, 0.25).unwrap();
        let q50 = quantile(&data, 0.50).unwrap();
        let q75 = quantile(&data, 0.75).unwrap();
        assert!(q25 <= q50 && q50 <= q75, "case {case}");
        let min = data.iter().copied().fold(f64::INFINITY, f64::min);
        let max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(min <= q25 && q75 <= max, "case {case}");
    }
}

#[test]
fn rank_tests_give_probabilities() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x57a709);
    for case in 0..CASES {
        let a = sample(&mut rng);
        let b = sample(&mut rng);
        let mwu = mann_whitney_u(&a, &b).unwrap();
        assert!((0.0..=1.0).contains(&mwu.p), "case {case}");
        let ks = ks_test(&a, &b).unwrap();
        assert!((0.0..=1.0).contains(&ks.p), "case {case}");
        assert!((0.0..=1.0).contains(&ks.d), "case {case}");
    }
}

#[test]
fn identical_samples_never_reject() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x57a710);
    for case in 0..CASES {
        let data = sample(&mut rng);
        if let Ok(r) = t_test(&data, &data, TTestKind::Welch) {
            assert!(
                !r.rejects_null(0.05),
                "case {case}: t = {}, p = {}",
                r.t,
                r.p
            );
        }
        let ks = ks_test(&data, &data).unwrap();
        assert_eq!(ks.d, 0.0, "case {case}");
    }
}
