//! Histograms and Gaussian kernel density estimates — the machinery behind
//! the paper's Figures 3 and 4 (per-category distributions of HPC events).

use std::error::Error;
use std::fmt;

/// Error constructing a histogram.
#[derive(Debug, Clone, PartialEq)]
pub enum HistogramError {
    /// No observations were supplied.
    EmptySample,
    /// Zero bins requested.
    ZeroBins,
    /// The requested range is invalid (`lo >= hi`) or not finite.
    BadRange {
        /// Lower edge supplied.
        lo: f64,
        /// Upper edge supplied.
        hi: f64,
    },
}

impl fmt::Display for HistogramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistogramError::EmptySample => write!(f, "cannot build a histogram of nothing"),
            HistogramError::ZeroBins => write!(f, "histogram needs at least one bin"),
            HistogramError::BadRange { lo, hi } => {
                write!(f, "invalid histogram range [{lo}, {hi})")
            }
        }
    }
}

impl Error for HistogramError {}

/// A fixed-range, equal-width histogram.
///
/// # Examples
///
/// ```
/// use scnn_stats::Histogram;
///
/// # fn main() -> Result<(), scnn_stats::HistogramError> {
/// let h = Histogram::from_data(&[1.0, 2.0, 2.5, 9.0], 4, Some((0.0, 10.0)))?;
/// assert_eq!(h.total(), 4);
/// assert_eq!(h.counts()[0], 2); // 1.0 and 2.0 land in [0, 2.5)
/// assert_eq!(h.counts()[1], 1); // 2.5 sits on the edge of the second bin
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
    overflow: u64,
    nan: u64,
}

impl Histogram {
    /// Builds a histogram from data.
    ///
    /// When `range` is `None` the sample min/max are used (the max is
    /// nudged so the largest observation lands in the last bin).
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError`] for empty data, zero bins or an invalid
    /// range.
    pub fn from_data(
        data: &[f64],
        bins: usize,
        range: Option<(f64, f64)>,
    ) -> Result<Self, HistogramError> {
        if data.is_empty() {
            return Err(HistogramError::EmptySample);
        }
        if bins == 0 {
            return Err(HistogramError::ZeroBins);
        }
        let (lo, hi) = match range {
            Some((lo, hi)) => (lo, hi),
            None => {
                let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                // Degenerate all-equal sample: widen symmetrically.
                if lo == hi {
                    (lo - 0.5, hi + 0.5)
                } else {
                    (lo, hi + (hi - lo) * 1e-9)
                }
            }
        };
        if lo >= hi || !lo.is_finite() || !hi.is_finite() {
            return Err(HistogramError::BadRange { lo, hi });
        }
        let mut h = Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            underflow: 0,
            overflow: 0,
            nan: 0,
        };
        for &x in data {
            h.add(x);
        }
        Ok(h)
    }

    /// Adds one observation. Values outside the range count as under/overflow
    /// and NaN counts as [`Histogram::nan`]; all still contribute to
    /// [`Histogram::total`], and none touch the bins.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        // NaN compares false against both edges, so without this check the
        // float→usize cast below would saturate it into bucket 0 and
        // silently distort the distribution.
        if x.is_nan() {
            self.nan += 1;
            return;
        }
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x >= self.hi {
            self.overflow += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = ((x - self.lo) / width) as usize;
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations, including under/overflow.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// NaN observations (counted in [`Histogram::total`], binned nowhere).
    pub fn nan(&self) -> u64 {
        self.nan
    }

    /// `(lo, hi)` range covered by the bins.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Centre of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * width
    }

    /// Normalised bin densities (integrate to ≈1 over the range, excluding
    /// under/overflow mass).
    pub fn densities(&self) -> Vec<f64> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let in_range = self.total - self.underflow - self.overflow - self.nan;
        if in_range == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / (in_range as f64 * width))
            .collect()
    }

    /// Renders a terminal sparkline-style bar chart, one row per bin — used
    /// by the `repro` binary to print Figures 3 and 4.
    pub fn ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = (c as usize * width) / max as usize;
            out.push_str(&format!(
                "{:>14.1} | {}{} {}\n",
                self.bin_center(i),
                "#".repeat(bar),
                " ".repeat(width - bar),
                c
            ));
        }
        out
    }
}

/// A Gaussian kernel density estimate evaluated on a fixed grid —
/// the smooth analogue of [`Histogram`] used for figure series.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDensity {
    grid: Vec<f64>,
    density: Vec<f64>,
    bandwidth: f64,
}

impl KernelDensity {
    /// Fits a KDE with Silverman's rule-of-thumb bandwidth and evaluates it
    /// at `points` evenly spaced locations spanning the data ±3 bandwidths.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError::EmptySample`] for empty data and
    /// [`HistogramError::ZeroBins`] for `points == 0`.
    pub fn fit(data: &[f64], points: usize) -> Result<Self, HistogramError> {
        if data.is_empty() {
            return Err(HistogramError::EmptySample);
        }
        if points == 0 {
            return Err(HistogramError::ZeroBins);
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0).max(1.0);
        let std = var.sqrt();
        // Silverman's rule; fall back to 1.0 for degenerate samples.
        let bandwidth = if std > 0.0 {
            1.06 * std * n.powf(-0.2)
        } else {
            1.0
        };
        let lo = data.iter().copied().fold(f64::INFINITY, f64::min) - 3.0 * bandwidth;
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max) + 3.0 * bandwidth;
        let step = if points > 1 {
            (hi - lo) / (points - 1) as f64
        } else {
            0.0
        };
        let norm = 1.0 / (n * bandwidth * (2.0 * std::f64::consts::PI).sqrt());
        let grid: Vec<f64> = (0..points).map(|i| lo + step * i as f64).collect();
        let density: Vec<f64> = grid
            .iter()
            .map(|&g| {
                data.iter()
                    .map(|&x| (-0.5 * ((g - x) / bandwidth).powi(2)).exp())
                    .sum::<f64>()
                    * norm
            })
            .collect();
        Ok(KernelDensity {
            grid,
            density,
            bandwidth,
        })
    }

    /// Evaluation grid.
    pub fn grid(&self) -> &[f64] {
        &self.grid
    }

    /// Density values, aligned with [`KernelDensity::grid`].
    pub fn density(&self) -> &[f64] {
        &self.density
    }

    /// The bandwidth chosen by Silverman's rule.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_total() {
        let h = Histogram::from_data(&[0.0, 1.0, 2.0, 3.0, 4.0], 5, Some((0.0, 5.0))).unwrap();
        assert_eq!(h.counts(), &[1, 1, 1, 1, 1]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.underflow() + h.overflow(), 0);
    }

    #[test]
    fn under_overflow() {
        let h = Histogram::from_data(&[-1.0, 0.5, 10.0], 2, Some((0.0, 1.0))).unwrap();
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.counts().iter().sum::<u64>(), 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn edges_bin_exactly() {
        let mut h = Histogram::from_data(&[0.5], 4, Some((0.0, 4.0))).unwrap();
        h.add(0.0); // x == lo: first bin, not underflow
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.underflow(), 0);
        h.add(-0.001); // x < lo: underflow, never bucket 0
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.underflow(), 1);
        h.add(4.0); // x == hi: overflow (half-open range)
        assert_eq!(h.overflow(), 1);
        assert_eq!(*h.counts().last().unwrap(), 0);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn nan_is_counted_apart_not_binned() {
        let mut h = Histogram::from_data(&[0.5], 4, Some((0.0, 4.0))).unwrap();
        h.add(f64::NAN);
        assert_eq!(h.nan(), 1);
        assert_eq!(h.counts()[0], 1, "NaN must not leak into bucket 0");
        assert_eq!(h.underflow() + h.overflow(), 0);
        assert_eq!(h.total(), 2);
        // Density normalisation excludes the NaN mass.
        let width = (h.range().1 - h.range().0) / 4.0;
        let mass: f64 = h.densities().iter().map(|d| d * width).sum();
        assert!((mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn infinities_are_under_and_overflow() {
        let mut h = Histogram::from_data(&[0.5], 2, Some((0.0, 1.0))).unwrap();
        h.add(f64::NEG_INFINITY);
        h.add(f64::INFINITY);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.nan(), 0);
    }

    #[test]
    fn auto_range_includes_max() {
        let h = Histogram::from_data(&[1.0, 2.0, 3.0], 3, None).unwrap();
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.counts().iter().sum::<u64>(), 3);
    }

    #[test]
    fn degenerate_constant_sample() {
        let h = Histogram::from_data(&[7.0; 10], 4, None).unwrap();
        assert_eq!(h.total(), 10);
        assert_eq!(h.counts().iter().sum::<u64>(), 10);
    }

    #[test]
    fn errors() {
        assert!(matches!(
            Histogram::from_data(&[], 4, None),
            Err(HistogramError::EmptySample)
        ));
        assert!(matches!(
            Histogram::from_data(&[1.0], 0, None),
            Err(HistogramError::ZeroBins)
        ));
        assert!(matches!(
            Histogram::from_data(&[1.0], 4, Some((2.0, 2.0))),
            Err(HistogramError::BadRange { .. })
        ));
    }

    #[test]
    fn densities_integrate_to_one() {
        let data: Vec<f64> = (0..100).map(|i| (i % 13) as f64).collect();
        let h = Histogram::from_data(&data, 13, None).unwrap();
        let width = (h.range().1 - h.range().0) / 13.0;
        let mass: f64 = h.densities().iter().map(|d| d * width).sum();
        assert!((mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bin_centers_monotone() {
        let h = Histogram::from_data(&[0.0, 10.0], 5, Some((0.0, 10.0))).unwrap();
        for i in 1..5 {
            assert!(h.bin_center(i) > h.bin_center(i - 1));
        }
    }

    #[test]
    fn ascii_contains_counts() {
        let h = Histogram::from_data(&[1.0, 1.0, 2.0], 2, Some((0.0, 4.0))).unwrap();
        let art = h.ascii(20);
        assert_eq!(art.lines().count(), 2);
        assert!(art.contains('#'));
    }

    #[test]
    fn kde_mass_and_peak() {
        let data: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 0.0 } else { 0.2 } + (i / 2) as f64 * 0.001)
            .collect();
        let kde = KernelDensity::fit(&data, 101).unwrap();
        assert_eq!(kde.grid().len(), 101);
        // Trapezoidal mass ≈ 1.
        let step = kde.grid()[1] - kde.grid()[0];
        let mass: f64 = kde
            .density()
            .windows(2)
            .map(|w| 0.5 * (w[0] + w[1]) * step)
            .sum();
        assert!((mass - 1.0).abs() < 0.02, "mass={mass}");
        assert!(kde.bandwidth() > 0.0);
    }

    #[test]
    fn kde_errors() {
        assert!(KernelDensity::fit(&[], 10).is_err());
        assert!(KernelDensity::fit(&[1.0], 0).is_err());
    }

    #[test]
    fn kde_constant_sample_finite() {
        let kde = KernelDensity::fit(&[5.0; 8], 11).unwrap();
        assert!(kde.density().iter().all(|d| d.is_finite()));
    }
}
