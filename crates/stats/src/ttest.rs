//! Two-sample t-tests — the paper's core hypothesis-testing machinery.
//!
//! The evaluator of Alam & Mukhopadhyay computes a two-sample t-statistic
//! between the HPC-event distributions of two input categories and rejects
//! the null hypothesis (no leakage) at 95% confidence. The paper does not
//! specify the flavour; we provide both Welch's unequal-variance test (the
//! default, and the standard choice for leakage assessment à la TVLA) and
//! the pooled-variance Student test.

use crate::descriptive::Summary;
use crate::distribution::StudentT;
use std::error::Error;
use std::fmt;

/// Which two-sample t-test to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TTestKind {
    /// Welch's t-test: unequal variances, Welch–Satterthwaite degrees of
    /// freedom. Default, and the variant used by leakage-assessment
    /// methodology (TVLA).
    #[default]
    Welch,
    /// Student's pooled-variance t-test: assumes equal variances,
    /// `n1 + n2 - 2` degrees of freedom.
    Pooled,
}

/// Error from a t-test on degenerate inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TTestError {
    /// One of the samples has fewer than two observations.
    TooFewSamples {
        /// Size of the first sample.
        n1: u64,
        /// Size of the second sample.
        n2: u64,
    },
    /// Both samples have zero variance and equal means — the statistic is
    /// 0/0.
    DegenerateVariance,
    /// The degrees of freedom came out non-finite or below one, so no
    /// Student-t p-value is defined. This indicates corrupted summary
    /// statistics (e.g. a NaN variance); it cannot occur for finite
    /// samples of size ≥ 2.
    InvalidDegreesOfFreedom,
}

impl fmt::Display for TTestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TTestError::TooFewSamples { n1, n2 } => {
                write!(
                    f,
                    "t-test needs at least 2 observations per sample, got {n1} and {n2}"
                )
            }
            TTestError::DegenerateVariance => {
                write!(
                    f,
                    "both samples have zero variance; t statistic is undefined"
                )
            }
            TTestError::InvalidDegreesOfFreedom => {
                write!(
                    f,
                    "degrees of freedom are non-finite or below 1; p-value is undefined"
                )
            }
        }
    }
}

impl Error for TTestError {}

/// Outcome of a two-sample t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTestResult {
    /// The t statistic (sign follows `mean1 - mean2`).
    pub t: f64,
    /// Degrees of freedom used for the p-value.
    pub df: f64,
    /// Two-tailed p-value.
    pub p: f64,
    /// Mean of the first sample.
    pub mean1: f64,
    /// Mean of the second sample.
    pub mean2: f64,
    /// Which flavour of test produced this result.
    pub kind: TTestKind,
}

impl TTestResult {
    /// True when the null hypothesis (equal means) is rejected at
    /// significance level `alpha` — i.e. the two distributions are
    /// distinguishable and the side channel leaks.
    pub fn rejects_null(&self, alpha: f64) -> bool {
        self.p < alpha
    }

    /// True when `|t|` exceeds the TVLA-style fixed threshold (classically
    /// 4.5) used in leakage certification.
    pub fn exceeds_threshold(&self, threshold: f64) -> bool {
        self.t.abs() > threshold
    }
}

impl fmt::Display for TTestResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t = {:+.4}, df = {:.1}, p = {:.4}",
            self.t, self.df, self.p
        )
    }
}

/// Degrees of freedom reported when the t statistic saturates to ±∞
/// (zero pooled variance, distinct means).
///
/// The true df is undefined there — the Welch–Satterthwaite formula is
/// 0/0 — so each kind reports its natural convention: Welch uses the
/// conservative lower bound `min(n1, n2) - 1` that its df can never go
/// below, and the pooled test keeps its exact `n1 + n2 - 2`. The p-value
/// on that path is 0 regardless; the df is reported for table output
/// only.
pub fn saturated_df(kind: TTestKind, n1: f64, n2: f64) -> f64 {
    match kind {
        TTestKind::Welch => (n1 - 1.0).min(n2 - 1.0),
        TTestKind::Pooled => n1 + n2 - 2.0,
    }
}

/// Runs a two-sample t-test from raw observations.
///
/// # Errors
///
/// Returns [`TTestError::TooFewSamples`] when either sample has fewer than
/// two points, and [`TTestError::DegenerateVariance`] when the statistic is
/// 0/0 (both variances zero, means equal).
///
/// # Examples
///
/// ```
/// use scnn_stats::ttest::{t_test, TTestKind};
///
/// # fn main() -> Result<(), scnn_stats::ttest::TTestError> {
/// let a = [5.1, 4.9, 5.0, 5.2, 4.8];
/// let b = [6.1, 5.9, 6.0, 6.2, 5.8];
/// let r = t_test(&a, &b, TTestKind::Welch)?;
/// assert!(r.rejects_null(0.05));
/// # Ok(())
/// # }
/// ```
pub fn t_test(
    sample1: &[f64],
    sample2: &[f64],
    kind: TTestKind,
) -> Result<TTestResult, TTestError> {
    let s1: Summary = sample1.iter().copied().collect();
    let s2: Summary = sample2.iter().copied().collect();
    t_test_from_summaries(&s1, &s2, kind)
}

/// Runs a two-sample t-test from pre-accumulated [`Summary`] statistics.
///
/// This is the entry point used by the evaluator, which accumulates counter
/// readings on line with Welford summaries rather than buffering raw
/// samples.
///
/// # Errors
///
/// Same conditions as [`t_test`].
pub fn t_test_from_summaries(
    s1: &Summary,
    s2: &Summary,
    kind: TTestKind,
) -> Result<TTestResult, TTestError> {
    let (n1, n2) = (s1.count(), s2.count());
    if n1 < 2 || n2 < 2 {
        return Err(TTestError::TooFewSamples { n1, n2 });
    }
    let (n1f, n2f) = (n1 as f64, n2 as f64);
    let (v1, v2) = (s1.sample_variance(), s2.sample_variance());
    let diff = s1.mean() - s2.mean();

    let (t, df) = match kind {
        TTestKind::Welch => {
            let se_sq = v1 / n1f + v2 / n2f;
            if se_sq == 0.0 {
                if diff == 0.0 {
                    return Err(TTestError::DegenerateVariance);
                }
                // Infinite separation: saturate rather than return NaN.
                return Ok(TTestResult {
                    t: diff.signum() * f64::INFINITY,
                    df: saturated_df(kind, n1f, n2f),
                    p: 0.0,
                    mean1: s1.mean(),
                    mean2: s2.mean(),
                    kind,
                });
            }
            let t = diff / se_sq.sqrt();
            // Welch–Satterthwaite approximation.
            let df = se_sq * se_sq
                / ((v1 / n1f).powi(2) / (n1f - 1.0) + (v2 / n2f).powi(2) / (n2f - 1.0));
            (t, df)
        }
        TTestKind::Pooled => {
            let df = n1f + n2f - 2.0;
            let pooled = ((n1f - 1.0) * v1 + (n2f - 1.0) * v2) / df;
            let se_sq = pooled * (1.0 / n1f + 1.0 / n2f);
            if se_sq == 0.0 {
                if diff == 0.0 {
                    return Err(TTestError::DegenerateVariance);
                }
                return Ok(TTestResult {
                    t: diff.signum() * f64::INFINITY,
                    df: saturated_df(kind, n1f, n2f),
                    p: 0.0,
                    mean1: s1.mean(),
                    mean2: s2.mean(),
                    kind,
                });
            }
            (diff / se_sq.sqrt(), df)
        }
    };

    // For finite samples of size ≥ 2 both df formulas are ≥ 1 (the
    // Welch–Satterthwaite df is bounded below by min(n1, n2) - 1), so
    // this guard only fires on corrupted summaries — which used to be
    // silently clamped to df = 1 and produce a plausible-looking p.
    if !(df.is_finite() && df >= 1.0) {
        return Err(TTestError::InvalidDegreesOfFreedom);
    }
    let p = if t.is_infinite() {
        0.0
    } else {
        StudentT::new(df).two_tailed_p(t)
    };
    Ok(TTestResult {
        t,
        df,
        p,
        mean1: s1.mean(),
        mean2: s2.mean(),
        kind,
    })
}

/// Cohen's d effect size between two samples (pooled-SD convention).
///
/// Returns `0.0` when the pooled standard deviation is zero.
pub fn cohens_d(s1: &Summary, s2: &Summary) -> f64 {
    let (n1, n2) = (s1.count() as f64, s2.count() as f64);
    if n1 < 2.0 || n2 < 2.0 {
        return 0.0;
    }
    let pooled = (((n1 - 1.0) * s1.sample_variance() + (n2 - 1.0) * s2.sample_variance())
        / (n1 + n2 - 2.0))
        .sqrt();
    if pooled == 0.0 {
        0.0
    } else {
        (s1.mean() - s2.mean()) / pooled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference fixture validated against scipy.stats.ttest_ind:
    //   a = [14.1, 15.2, 13.8, 16.0, 15.5, 14.7]
    //   b = [12.9, 13.1, 12.5, 13.8, 13.3]
    //   Welch:  t = 4.3453, p = 0.002370 (df ≈ 8.13)
    //   Pooled: t = 4.1291, p = 0.002563 (df = 9)
    const A: [f64; 6] = [14.1, 15.2, 13.8, 16.0, 15.5, 14.7];
    const B: [f64; 5] = [12.9, 13.1, 12.5, 13.8, 13.3];

    #[test]
    fn welch_reference() {
        let r = t_test(&A, &B, TTestKind::Welch).unwrap();
        assert!((r.t - 4.3453).abs() < 5e-3, "t={}", r.t);
        assert!((r.p - 0.002370).abs() < 5e-4, "p={}", r.p);
        assert!(r.rejects_null(0.05));
        assert!(!r.rejects_null(0.001));
    }

    #[test]
    fn pooled_reference() {
        let r = t_test(&A, &B, TTestKind::Pooled).unwrap();
        assert!((r.t - 4.1291).abs() < 5e-3, "t={}", r.t);
        assert!((r.df - 9.0).abs() < 1e-12);
        assert!((r.p - 0.002563).abs() < 5e-4, "p={}", r.p);
    }

    #[test]
    fn antisymmetric_in_arguments() {
        let r1 = t_test(&A, &B, TTestKind::Welch).unwrap();
        let r2 = t_test(&B, &A, TTestKind::Welch).unwrap();
        assert!((r1.t + r2.t).abs() < 1e-12);
        assert!((r1.p - r2.p).abs() < 1e-12);
    }

    #[test]
    fn identical_samples_not_significant() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = t_test(&x, &x, TTestKind::Welch).unwrap();
        assert!(r.t.abs() < 1e-12);
        assert!(r.p > 0.999);
        assert!(!r.rejects_null(0.05));
    }

    #[test]
    fn too_few_samples() {
        assert!(matches!(
            t_test(&[1.0], &[1.0, 2.0], TTestKind::Welch),
            Err(TTestError::TooFewSamples { .. })
        ));
    }

    #[test]
    fn degenerate_variance() {
        assert!(matches!(
            t_test(&[2.0, 2.0], &[2.0, 2.0], TTestKind::Welch),
            Err(TTestError::DegenerateVariance)
        ));
        // Zero variance but distinct means: infinite separation, p = 0.
        let r = t_test(&[1.0, 1.0], &[2.0, 2.0], TTestKind::Welch).unwrap();
        assert!(r.t.is_infinite() && r.t < 0.0);
        assert_eq!(r.p, 0.0);
        assert!(r.rejects_null(0.05));
    }

    #[test]
    fn saturation_df_follows_test_kind() {
        // Regression: the Welch saturation path used to report the pooled
        // df (n1 + n2 - 2). It must report a Welch-consistent df — the
        // conservative lower bound min(n1, n2) - 1.
        let a = [1.0, 1.0, 1.0];
        let b = [2.0, 2.0];
        let w = t_test(&a, &b, TTestKind::Welch).unwrap();
        assert!(w.t.is_infinite());
        assert_eq!(w.df, 1.0, "Welch saturation df = min(n1, n2) - 1");
        let p = t_test(&a, &b, TTestKind::Pooled).unwrap();
        assert!(p.t.is_infinite());
        assert_eq!(p.df, 3.0, "pooled saturation df = n1 + n2 - 2");
        assert_eq!(saturated_df(TTestKind::Welch, 3.0, 2.0), 1.0);
        assert_eq!(saturated_df(TTestKind::Pooled, 3.0, 2.0), 3.0);
    }

    #[test]
    fn welch_df_boundary_of_one_is_accepted() {
        // One zero-variance sample of size 2 drives the Welch–Satterthwaite
        // df to exactly 1.0 — the smallest legal value. This must succeed,
        // not trip the df guard.
        let r = t_test(&[0.0, 1.0], &[5.0, 5.0], TTestKind::Welch).unwrap();
        assert_eq!(r.df, 1.0);
        assert!(r.p > 0.0 && r.p < 1.0);
    }

    #[test]
    fn corrupted_summaries_error_instead_of_clamping() {
        // Regression: a NaN variance used to be clamped to df = 1 and
        // yield a plausible-looking p-value. It must now surface as an
        // explicit error.
        let mut s1 = Summary::new();
        let mut s2 = Summary::new();
        for v in [1.0, f64::NAN, 2.0] {
            s1.push(v);
        }
        for v in [1.0, 2.0, 3.0] {
            s2.push(v);
        }
        assert_eq!(
            t_test_from_summaries(&s1, &s2, TTestKind::Welch),
            Err(TTestError::InvalidDegreesOfFreedom)
        );
        assert!(TTestError::InvalidDegreesOfFreedom
            .to_string()
            .contains("degrees"));
    }

    #[test]
    fn from_summaries_matches_raw() {
        let s1: Summary = A.iter().copied().collect();
        let s2: Summary = B.iter().copied().collect();
        let via_summary = t_test_from_summaries(&s1, &s2, TTestKind::Welch).unwrap();
        let via_raw = t_test(&A, &B, TTestKind::Welch).unwrap();
        assert!((via_summary.t - via_raw.t).abs() < 1e-12);
        assert!((via_summary.p - via_raw.p).abs() < 1e-12);
    }

    #[test]
    fn effect_size_reference() {
        let s1: Summary = A.iter().copied().collect();
        let s2: Summary = B.iter().copied().collect();
        let d = cohens_d(&s1, &s2);
        // pooled-SD Cohen's d ≈ 2.5003 (cross-checked externally).
        assert!((d - 2.5003).abs() < 5e-3, "d={d}");
        assert!((cohens_d(&s2, &s1) + d).abs() < 1e-12);
    }

    #[test]
    fn threshold_check() {
        let r = t_test(&A, &B, TTestKind::Welch).unwrap();
        assert!(!r.exceeds_threshold(4.5));
        assert!(r.exceeds_threshold(3.0));
    }

    #[test]
    fn well_separated_large_samples_tiny_p() {
        let a: Vec<f64> = (0..200).map(|i| 100.0 + (i % 7) as f64).collect();
        let b: Vec<f64> = (0..200).map(|i| 140.0 + (i % 5) as f64).collect();
        let r = t_test(&a, &b, TTestKind::Welch).unwrap();
        assert!(r.t < -20.0);
        assert!(r.p < 1e-10);
    }
}
