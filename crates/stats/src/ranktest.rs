//! Distribution-free robustness checks: Mann–Whitney U and the two-sample
//! Kolmogorov–Smirnov test.
//!
//! The paper relies on the t-test alone; these rank tests are provided as a
//! cross-check because HPC counter distributions are often heavy-tailed
//! (interrupt outliers), where the t-test's normality assumption is shaky.
//! The `repro` binary reports both so a user can see the verdicts agree.

use crate::distribution::StdNormal;
use crate::ttest::TTestError;

/// Result of a Mann–Whitney U test (normal approximation with tie
/// correction, two-sided).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannWhitneyResult {
    /// The U statistic of the first sample.
    pub u: f64,
    /// Standardised z statistic.
    pub z: f64,
    /// Two-sided p-value from the normal approximation.
    pub p: f64,
}

/// Two-sided Mann–Whitney U test with the normal approximation
/// (appropriate for the sample sizes ≥ 20 used throughout this workspace).
///
/// # Errors
///
/// Returns [`TTestError::TooFewSamples`] when either sample is empty.
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Result<MannWhitneyResult, TTestError> {
    if a.is_empty() || b.is_empty() {
        return Err(TTestError::TooFewSamples {
            n1: a.len() as u64,
            n2: b.len() as u64,
        });
    }
    let n1 = a.len() as f64;
    let n2 = b.len() as f64;

    // Rank the pooled sample with mid-ranks for ties.
    let mut pooled: Vec<(f64, usize)> = a
        .iter()
        .map(|&x| (x, 0usize))
        .chain(b.iter().map(|&x| (x, 1usize)))
        .collect();
    pooled.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("NaN in rank test input"));

    let n = pooled.len();
    let mut ranks = vec![0.0f64; n];
    let mut tie_correction = 0.0f64;
    let mut idx = 0;
    while idx < n {
        let mut j = idx;
        while j + 1 < n && pooled[j + 1].0 == pooled[idx].0 {
            j += 1;
        }
        let tied = (j - idx + 1) as f64;
        let mid_rank = (idx + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(idx) {
            *r = mid_rank;
        }
        if tied > 1.0 {
            tie_correction += tied.powi(3) - tied;
        }
        idx = j + 1;
    }

    let r1: f64 = pooled
        .iter()
        .zip(ranks.iter())
        .filter(|((_, g), _)| *g == 0)
        .map(|(_, &r)| r)
        .sum();
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;

    let mean_u = n1 * n2 / 2.0;
    let nf = n as f64;
    let var_u = n1 * n2 / 12.0 * ((nf + 1.0) - tie_correction / (nf * (nf - 1.0)));
    if var_u <= 0.0 {
        // All observations identical across both samples.
        return Ok(MannWhitneyResult {
            u: u1,
            z: 0.0,
            p: 1.0,
        });
    }
    // Continuity correction.
    let z = (u1 - mean_u - 0.5 * (u1 - mean_u).signum()) / var_u.sqrt();
    let p = StdNormal::new().two_tailed_p(z);
    Ok(MannWhitneyResult { u: u1, z, p })
}

/// Result of a two-sample Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// Maximum absolute difference between the empirical CDFs.
    pub d: f64,
    /// Asymptotic two-sided p-value (Kolmogorov distribution).
    pub p: f64,
}

/// Two-sample Kolmogorov–Smirnov test with the asymptotic p-value.
///
/// # Errors
///
/// Returns [`TTestError::TooFewSamples`] when either sample is empty.
pub fn ks_test(a: &[f64], b: &[f64]) -> Result<KsResult, TTestError> {
    if a.is_empty() || b.is_empty() {
        return Err(TTestError::TooFewSamples {
            n1: a.len() as u64,
            n2: b.len() as u64,
        });
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("NaN in KS input"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("NaN in KS input"));

    let (n1, n2) = (sa.len(), sb.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < n1 && j < n2 {
        let x = sa[i].min(sb[j]);
        while i < n1 && sa[i] <= x {
            i += 1;
        }
        while j < n2 && sb[j] <= x {
            j += 1;
        }
        let f1 = i as f64 / n1 as f64;
        let f2 = j as f64 / n2 as f64;
        d = d.max((f1 - f2).abs());
    }

    let ne = (n1 as f64 * n2 as f64) / (n1 as f64 + n2 as f64);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    let p = kolmogorov_q(lambda);
    Ok(KsResult { d, p })
}

/// Kolmogorov distribution tail `Q(λ) = 2 Σ (-1)^{k-1} e^{-2 k² λ²}`.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interleaved(n: usize, offset: f64) -> Vec<f64> {
        (0..n).map(|i| (i % 13) as f64 * 0.7 + offset).collect()
    }

    #[test]
    fn mwu_separated_samples_significant() {
        let a = interleaved(50, 0.0);
        let b = interleaved(50, 100.0);
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p < 1e-6, "p={}", r.p);
        assert_eq!(r.u, 0.0, "all of a below all of b");
    }

    #[test]
    fn mwu_identical_samples_insignificant() {
        let a = interleaved(60, 0.0);
        let r = mann_whitney_u(&a, &a).unwrap();
        assert!(r.p > 0.9, "p={}", r.p);
    }

    #[test]
    fn mwu_all_constant() {
        let r = mann_whitney_u(&[3.0; 10], &[3.0; 10]).unwrap();
        assert_eq!(r.p, 1.0);
        assert_eq!(r.z, 0.0);
    }

    #[test]
    fn mwu_symmetry() {
        let a = interleaved(30, 0.0);
        let b = interleaved(40, 2.0);
        let r1 = mann_whitney_u(&a, &b).unwrap();
        let r2 = mann_whitney_u(&b, &a).unwrap();
        assert!((r1.p - r2.p).abs() < 1e-9);
        // U1 + U2 = n1*n2.
        assert!((r1.u + r2.u - 30.0 * 40.0).abs() < 1e-9);
    }

    #[test]
    fn mwu_empty_errors() {
        assert!(mann_whitney_u(&[], &[1.0]).is_err());
    }

    #[test]
    fn ks_d_statistic_bounds() {
        let a = interleaved(50, 0.0);
        let b = interleaved(50, 100.0);
        let r = ks_test(&a, &b).unwrap();
        assert!((r.d - 1.0).abs() < 1e-12, "disjoint supports → D = 1");
        assert!(r.p < 1e-6);
    }

    #[test]
    fn ks_identical() {
        let a = interleaved(80, 0.0);
        let r = ks_test(&a, &a).unwrap();
        assert_eq!(r.d, 0.0);
        assert!(r.p > 0.99);
    }

    #[test]
    fn ks_partial_overlap() {
        let a = interleaved(100, 0.0);
        let b = interleaved(100, 1.0);
        let r = ks_test(&a, &b).unwrap();
        assert!(r.d > 0.0 && r.d < 1.0);
    }

    #[test]
    fn kolmogorov_q_monotone() {
        assert!(kolmogorov_q(0.5) > kolmogorov_q(1.0));
        assert!(kolmogorov_q(1.0) > kolmogorov_q(2.0));
        assert_eq!(kolmogorov_q(0.0), 1.0);
        // Known reference: Q(1.0) ≈ 0.27.
        assert!((kolmogorov_q(1.0) - 0.27).abs() < 0.005);
    }
}
