//! Higher-order leakage tests: the second-order t-test of leakage
//! certification (TVLA), which catches implementations whose *mean*
//! footprint is constant but whose *variance* is input-dependent —
//! exactly what naive noise-injection countermeasures produce.

use crate::descriptive::Summary;
use crate::ttest::{t_test, TTestError, TTestKind, TTestResult};

/// Centres a sample and squares it: `(x - mean)²`. A first-order t-test
/// on these transformed samples is the classical second-order leakage
/// test.
pub fn centered_squares(sample: &[f64]) -> Vec<f64> {
    let s: Summary = sample.iter().copied().collect();
    let mean = s.mean();
    sample.iter().map(|x| (x - mean) * (x - mean)).collect()
}

/// Second-order two-sample t-test: compares the *variances* of the two
/// samples by t-testing their centred squares.
///
/// # Errors
///
/// Same conditions as [`t_test`].
///
/// # Examples
///
/// ```
/// use scnn_stats::moments::second_order_t_test;
/// use scnn_stats::TTestKind;
///
/// # fn main() -> Result<(), scnn_stats::TTestError> {
/// // Equal means, very different spreads.
/// let tight: Vec<f64> = (0..40).map(|i| 100.0 + (i % 3) as f64).collect();
/// let wide: Vec<f64> = (0..40).map(|i| 100.0 + ((i % 21) as f64 - 10.0) * 4.0).collect();
/// let r = second_order_t_test(&tight, &wide, TTestKind::Welch)?;
/// assert!(r.rejects_null(0.05), "variance difference must be detected");
/// # Ok(())
/// # }
/// ```
pub fn second_order_t_test(
    sample1: &[f64],
    sample2: &[f64],
    kind: TTestKind,
) -> Result<TTestResult, TTestError> {
    t_test(&centered_squares(sample1), &centered_squares(sample2), kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spread(n: usize, scale: f64) -> Vec<f64> {
        (0..n)
            .map(|i| 50.0 + ((i % 13) as f64 - 6.0) * scale)
            .collect()
    }

    #[test]
    fn centered_squares_mean_is_population_variance() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let sq = centered_squares(&data);
        let mean_sq: f64 = sq.iter().sum::<f64>() / sq.len() as f64;
        assert!((mean_sq - 4.0).abs() < 1e-12, "population variance is 4");
    }

    #[test]
    fn detects_variance_difference_with_equal_means() {
        let a = spread(60, 1.0);
        let b = spread(60, 5.0);
        // First order: means identical → no rejection.
        let first = t_test(&a, &b, TTestKind::Welch).unwrap();
        assert!(!first.rejects_null(0.05), "t = {}", first.t);
        // Second order: variances differ by 25× → strong rejection.
        let second = second_order_t_test(&a, &b, TTestKind::Welch).unwrap();
        assert!(second.rejects_null(0.01), "t = {}", second.t);
    }

    #[test]
    fn identical_samples_pass() {
        let a = spread(40, 2.0);
        let r = second_order_t_test(&a, &a, TTestKind::Welch).unwrap();
        assert!(!r.rejects_null(0.05));
    }

    #[test]
    fn degenerate_variances_error() {
        assert!(matches!(
            second_order_t_test(&[1.0, 1.0, 1.0], &[2.0, 2.0, 2.0], TTestKind::Welch),
            Err(TTestError::DegenerateVariance)
        ));
    }
}
