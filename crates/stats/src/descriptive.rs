//! Descriptive statistics: one-pass (Welford) accumulation and quantiles.

/// Numerically stable one-pass accumulator for mean and variance
/// (Welford's algorithm), plus min/max tracking.
///
/// # Examples
///
/// ```
/// use scnn_stats::Summary;
///
/// let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().copied().collect();
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (denominator `n-1`); `0.0` with fewer than
    /// two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (denominator `n`); `0.0` when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean, `s / sqrt(n)`.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_std() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Coefficient of variation `s / |mean|`; `0.0` when the mean is zero.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.sample_std() / self.mean.abs()
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Computes the `q`-quantile (0 ≤ q ≤ 1) of a sample using linear
/// interpolation between order statistics (type-7, the numpy default).
///
/// Returns `None` for an empty sample. NaN observations sort after every
/// number (IEEE total order), so a quantile whose order statistics touch
/// the NaN tail evaluates to NaN instead of aborting — one bad counter
/// reading degrades one statistic, not the whole campaign.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile requires 0 <= q <= 1");
    if data.is_empty() {
        return None;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median shorthand for [`quantile`] at `q = 0.5`.
pub fn median(data: &[f64]) -> Option<f64> {
    quantile(data, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64) * 0.37 - 12.0).collect();
        let s: Summary = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.sample_variance() - var).abs() < 1e-6);
    }

    #[test]
    fn empty_and_single() {
        let e = Summary::new();
        assert_eq!(e.count(), 0);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.sample_variance(), 0.0);
        let mut s = Summary::new();
        s.push(5.0);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..200).map(|i| ((i * 31) % 17) as f64).collect();
        let seq: Summary = data.iter().copied().collect();
        let mut a: Summary = data[..77].iter().copied().collect();
        let b: Summary = data[77..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-10);
        assert!((a.sample_variance() - seq.sample_variance()).abs() < 1e-9);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a: Summary = [1.0, 2.0].iter().copied().collect();
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn numerical_stability_large_offset() {
        // Classic catastrophic-cancellation case for naive sum-of-squares.
        let s: Summary = [1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0]
            .iter()
            .copied()
            .collect();
        assert!((s.sample_variance() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn quantiles() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(quantile(&data, 1.0), Some(4.0));
        assert_eq!(median(&data), Some(2.5));
        assert_eq!(quantile(&data, 0.25), Some(1.75));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_tolerates_nan_without_panicking() {
        // NaN sorts after every number under total order: low quantiles
        // stay exact, high ones degrade to NaN — never a panic.
        let data = [3.0, f64::NAN, 1.0, 2.0];
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(median(&data), Some(2.5));
        assert!(quantile(&data, 1.0).unwrap().is_nan());
        assert!(median(&[f64::NAN]).unwrap().is_nan());
    }

    #[test]
    fn extend_and_cv() {
        let mut s = Summary::new();
        s.extend([10.0, 10.0, 10.0]);
        assert_eq!(s.coefficient_of_variation(), 0.0);
        s.extend([20.0]);
        assert!(s.coefficient_of_variation() > 0.0);
    }
}
