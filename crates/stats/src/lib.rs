//! # scnn-stats
//!
//! The statistical toolkit behind the leakage evaluator of *"How Secure are
//! Deep Learning Algorithms from Side-Channel based Reverse Engineering?"*
//! (Alam & Mukhopadhyay, DAC 2019): exact Student-t p-values built on
//! from-scratch special functions, Welford accumulators, histograms/KDEs
//! for the paper's distribution figures, pairwise leakage matrices, and
//! rank-based robustness tests.
//!
//! Everything is implemented in this crate — no external statistics
//! dependency — so the p-values in the reproduced Tables 1 and 2 are fully
//! auditable.
//!
//! # Examples
//!
//! ```
//! use scnn_stats::{DecisionRule, PairwiseLeakage, TTestKind};
//!
//! # fn main() -> Result<(), scnn_stats::TTestError> {
//! // One sample of counter readings per input category.
//! let per_category = vec![
//!     vec![100.0, 101.0, 99.0, 100.5, 100.2],
//!     vec![150.0, 151.0, 149.0, 150.5, 150.2],
//! ];
//! let leak = PairwiseLeakage::assess_samples(
//!     &per_category,
//!     TTestKind::Welch,
//!     DecisionRule::PValue { alpha: 0.05 },
//! )?;
//! assert!(leak.leaks()); // the evaluator would raise an alarm
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod descriptive;
pub mod distribution;
pub mod histogram;
pub mod leakage;
pub mod moments;
pub mod ranktest;
pub mod special;
pub mod ttest;

pub use descriptive::{median, quantile, Summary};
pub use distribution::{StdNormal, StudentT};
pub use histogram::{Histogram, HistogramError, KernelDensity};
pub use leakage::{DecisionRule, PairResult, PairwiseLeakage};
pub use moments::second_order_t_test;
pub use ranktest::{ks_test, mann_whitney_u, KsResult, MannWhitneyResult};
pub use ttest::{cohens_d, t_test, t_test_from_summaries, TTestError, TTestKind, TTestResult};
