//! Special functions needed for exact p-values: log-gamma, regularized
//! incomplete beta, and the error function.
//!
//! Implementations follow the classic Lanczos / Lentz continued-fraction
//! formulations (Numerical Recipes §6) and are accurate to ~1e-10 over the
//! parameter ranges exercised by the t-tests in this workspace.

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, n = 9 coefficients).
///
/// # Panics
///
/// Panics if `x <= 0` (the reflection branch is not needed by this crate).
///
/// # Examples
///
/// ```
/// use scnn_stats::special::ln_gamma;
///
/// // Γ(5) = 24
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0` and
/// `0 <= x <= 1`.
///
/// Evaluated with the Lentz continued fraction, using the symmetry
/// `I_x(a,b) = 1 - I_{1-x}(b,a)` to stay in the rapidly-converging region.
///
/// # Panics
///
/// Panics if `x` is outside `[0, 1]` or `a`/`b` are non-positive.
pub fn betai(a: f64, b: f64, x: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&x),
        "betai requires 0 <= x <= 1, got {x}"
    );
    assert!(a > 0.0 && b > 0.0, "betai requires a, b > 0");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Modified Lentz continued-fraction evaluation for [`betai`].
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Error function `erf(x)`, accurate to ~1.2e-7 (Abramowitz & Stegun 7.1.26
/// refined via the complementary rational approximation of Numerical
/// Recipes `erfc`).
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    // Chebyshev fit from Numerical Recipes (fractional error < 1.2e-7).
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_factorials() {
        // Γ(n) = (n-1)!
        let facts = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            let x = (n + 1) as f64;
            assert!((ln_gamma(x) - f.ln()).abs() < 1e-9, "Γ({x}) expected {f}");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        let expect = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expect).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn betai_endpoints() {
        assert_eq!(betai(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betai(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn betai_uniform_case() {
        // I_x(1,1) = x.
        for &x in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            assert!((betai(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn betai_symmetry() {
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (0.5, 0.5, 0.2), (10.0, 3.0, 0.7)] {
            let lhs = betai(a, b, x);
            let rhs = 1.0 - betai(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-10, "a={a} b={b} x={x}");
        }
    }

    #[test]
    fn betai_known_values() {
        // I_0.5(2,2) = 0.5 by symmetry; I_0.5(1,2) = 0.75 analytically.
        assert!((betai(2.0, 2.0, 0.5) - 0.5).abs() < 1e-12);
        assert!((betai(1.0, 2.0, 0.5) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn erf_reference_points() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.520_499_877_8),
            (1.0, 0.842_700_792_9),
            (2.0, 0.995_322_265_0),
            (-1.0, -0.842_700_792_9),
        ];
        for &(x, want) in &cases {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x})");
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-2.0, -0.3, 0.0, 0.7, 3.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }
}
