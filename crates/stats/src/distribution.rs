//! Probability distributions used by the hypothesis tests: Student's t and
//! the standard normal.

use crate::special::{betai, erf};

/// Student's t distribution with `nu` degrees of freedom.
///
/// # Examples
///
/// ```
/// use scnn_stats::distribution::StudentT;
///
/// let t = StudentT::new(10.0);
/// // CDF at 0 is exactly one half.
/// assert!((t.cdf(0.0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    nu: f64,
}

impl StudentT {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `nu <= 0` or `nu` is not finite.
    pub fn new(nu: f64) -> Self {
        assert!(
            nu.is_finite() && nu > 0.0,
            "degrees of freedom must be positive"
        );
        StudentT { nu }
    }

    /// Degrees of freedom.
    pub fn degrees_of_freedom(&self) -> f64 {
        self.nu
    }

    /// Cumulative distribution function `P(T <= t)`.
    pub fn cdf(&self, t: f64) -> f64 {
        if t == 0.0 {
            return 0.5;
        }
        let x = self.nu / (self.nu + t * t);
        let p = 0.5 * betai(0.5 * self.nu, 0.5, x);
        if t > 0.0 {
            1.0 - p
        } else {
            p
        }
    }

    /// Two-sided tail probability `P(|T| >= |t|)` — the two-tailed p-value
    /// for an observed statistic `t`.
    pub fn two_tailed_p(&self, t: f64) -> f64 {
        betai(0.5 * self.nu, 0.5, self.nu / (self.nu + t * t))
    }

    /// One-sided upper-tail probability `P(T >= t)`.
    pub fn upper_tail_p(&self, t: f64) -> f64 {
        1.0 - self.cdf(t)
    }

    /// Inverse of the two-sided tail: the critical value `t*` with
    /// `P(|T| >= t*) = alpha`. Solved by bisection (monotone tail).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1)`.
    pub fn two_tailed_critical(&self, alpha: f64) -> f64 {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        while self.two_tailed_p(hi) > alpha {
            hi *= 2.0;
            if hi > 1e9 {
                break;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.two_tailed_p(mid) > alpha {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Standard normal distribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StdNormal;

impl StdNormal {
    /// Creates the distribution (unit struct; equivalent to `default`).
    pub fn new() -> Self {
        StdNormal
    }

    /// Cumulative distribution function `Φ(z)`.
    pub fn cdf(&self, z: f64) -> f64 {
        0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
    }

    /// Two-sided tail probability `P(|Z| >= |z|)`, clamped to `[0, 1]`
    /// (the underlying `erf` approximation carries ~1e-7 error).
    pub fn two_tailed_p(&self, z: f64) -> f64 {
        (2.0 * (1.0 - self.cdf(z.abs()))).clamp(0.0, 1.0)
    }

    /// Probability density function `φ(z)`.
    pub fn pdf(&self, z: f64) -> f64 {
        (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_cdf_symmetry() {
        let t = StudentT::new(7.0);
        for &x in &[0.5, 1.0, 2.5, 4.0] {
            assert!((t.cdf(x) + t.cdf(-x) - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn t_matches_tables() {
        // Classic two-tailed critical values: t_{0.05, nu}.
        let cases = [
            (1.0, 12.706),
            (5.0, 2.571),
            (10.0, 2.228),
            (30.0, 2.042),
            (120.0, 1.980),
        ];
        for &(nu, crit) in &cases {
            let d = StudentT::new(nu);
            let p = d.two_tailed_p(crit);
            assert!((p - 0.05).abs() < 2e-4, "nu={nu}: p={p}");
        }
    }

    #[test]
    fn t_critical_inverts_p() {
        for &nu in &[2.0, 9.0, 57.3, 400.0] {
            let d = StudentT::new(nu);
            for &alpha in &[0.10, 0.05, 0.01] {
                let crit = d.two_tailed_critical(alpha);
                assert!(
                    (d.two_tailed_p(crit) - alpha).abs() < 1e-9,
                    "nu={nu} alpha={alpha}"
                );
            }
        }
    }

    #[test]
    fn t_large_nu_approaches_normal() {
        let t = StudentT::new(1e6);
        let n = StdNormal::new();
        for &x in &[0.0, 0.5, 1.0, 1.96, 3.0] {
            assert!((t.cdf(x) - n.cdf(x)).abs() < 1e-4, "x={x}");
        }
    }

    #[test]
    #[should_panic]
    fn t_rejects_bad_nu() {
        StudentT::new(0.0);
    }

    #[test]
    fn normal_reference_points() {
        let n = StdNormal::new();
        // erfc is a ~1.2e-7-accurate Chebyshev fit, so Φ(0) is 0.5 only to
        // that tolerance.
        assert!((n.cdf(0.0) - 0.5).abs() < 2e-7);
        assert!((n.cdf(1.959_964) - 0.975).abs() < 1e-4);
        assert!((n.two_tailed_p(1.959_964) - 0.05).abs() < 1e-4);
        assert!((n.pdf(0.0) - 0.398_942_28).abs() < 1e-7);
    }

    #[test]
    fn extreme_t_gives_tiny_p() {
        let d = StudentT::new(100.0);
        assert!(d.two_tailed_p(40.0) < 1e-20);
        assert!(d.two_tailed_p(0.0) > 0.999);
    }
}
