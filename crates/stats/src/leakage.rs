//! Pairwise leakage assessment over labelled distributions — the paper's
//! evaluator methodology (§4) expressed as a reusable statistical primitive.
//!
//! Given one sample of counter readings per input category, this module
//! computes every pairwise t-test, applies the chosen decision rule
//! (p < α, optionally with Holm–Bonferroni correction, or a TVLA fixed
//! threshold) and summarises which pairs are distinguishable.

use crate::descriptive::Summary;
use crate::ttest::{
    cohens_d, saturated_df, t_test_from_summaries, TTestError, TTestKind, TTestResult,
};

/// Decision rule used to flag a pair of distributions as distinguishable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecisionRule {
    /// Reject when the two-tailed p-value is below `alpha` (the paper's
    /// rule, with `alpha = 0.05` for its 95% confidence tests).
    PValue {
        /// Significance level.
        alpha: f64,
    },
    /// Reject when `|t|` exceeds a fixed threshold, as in TVLA leakage
    /// certification (classically 4.5).
    TThreshold {
        /// Absolute-t threshold.
        threshold: f64,
    },
}

impl Default for DecisionRule {
    fn default() -> Self {
        DecisionRule::PValue { alpha: 0.05 }
    }
}

impl DecisionRule {
    /// Applies the rule to one test result.
    pub fn flags(&self, r: &TTestResult) -> bool {
        match *self {
            DecisionRule::PValue { alpha } => r.rejects_null(alpha),
            DecisionRule::TThreshold { threshold } => r.exceeds_threshold(threshold),
        }
    }
}

/// One entry of the pairwise matrix: categories `i` and `j` (`i < j`),
/// their test result, effect size and the leak verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairResult {
    /// First category index.
    pub i: usize,
    /// Second category index.
    pub j: usize,
    /// The t-test between category `i` and category `j`.
    pub test: TTestResult,
    /// Cohen's d effect size.
    pub effect_size: f64,
    /// Whether the decision rule flagged this pair as distinguishable.
    pub distinguishable: bool,
}

impl PairResult {
    /// Computes one cell of the pairwise matrix: the t-test between
    /// categories `i` and `j` of `summaries`, the effect size, and the
    /// verdict under `rule`.
    ///
    /// Each cell depends only on the two summaries it reads, so callers
    /// may evaluate cells in any order — or in parallel — and assemble
    /// the same matrix as the sequential [`PairwiseLeakage::assess`]
    /// loop.
    ///
    /// # Errors
    ///
    /// Propagates [`TTestError`] from a degenerate pair. Two constant
    /// samples with equal values are *not* an error: they are exactly
    /// what a leak-free implementation produces, so that case reports
    /// `t = 0, p = 1` and no flag.
    pub fn compute(
        summaries: &[Summary],
        i: usize,
        j: usize,
        kind: TTestKind,
        rule: DecisionRule,
    ) -> Result<Self, TTestError> {
        let test = match t_test_from_summaries(&summaries[i], &summaries[j], kind) {
            Ok(t) => t,
            Err(TTestError::DegenerateVariance) => TTestResult {
                t: 0.0,
                df: saturated_df(
                    kind,
                    summaries[i].count() as f64,
                    summaries[j].count() as f64,
                ),
                p: 1.0,
                mean1: summaries[i].mean(),
                mean2: summaries[j].mean(),
                kind,
            },
            Err(e) => return Err(e),
        };
        Ok(PairResult {
            i,
            j,
            test,
            effect_size: cohens_d(&summaries[i], &summaries[j]),
            distinguishable: rule.flags(&test),
        })
    }
}

/// Result of a full pairwise leakage assessment for one measured quantity
/// (e.g. one HPC event).
#[derive(Debug, Clone, PartialEq)]
pub struct PairwiseLeakage {
    /// All `k·(k-1)/2` pairwise results in lexicographic `(i, j)` order.
    pub pairs: Vec<PairResult>,
    /// Number of categories assessed.
    pub categories: usize,
    /// The rule that produced the verdicts.
    pub rule: DecisionRule,
}

impl PairwiseLeakage {
    /// Runs the assessment over per-category summaries.
    ///
    /// # Errors
    ///
    /// Propagates [`TTestError`] from any degenerate pair (e.g. a category
    /// with fewer than two observations).
    pub fn assess(
        summaries: &[Summary],
        kind: TTestKind,
        rule: DecisionRule,
    ) -> Result<Self, TTestError> {
        let k = summaries.len();
        let mut pairs = Vec::with_capacity(k * (k.saturating_sub(1)) / 2);
        for i in 0..k {
            for j in (i + 1)..k {
                pairs.push(PairResult::compute(summaries, i, j, kind, rule)?);
            }
        }
        Ok(PairwiseLeakage {
            pairs,
            categories: k,
            rule,
        })
    }

    /// Convenience entry point from raw per-category samples.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PairwiseLeakage::assess`].
    pub fn assess_samples(
        samples: &[Vec<f64>],
        kind: TTestKind,
        rule: DecisionRule,
    ) -> Result<Self, TTestError> {
        let summaries: Vec<Summary> = samples
            .iter()
            .map(|s| s.iter().copied().collect())
            .collect();
        Self::assess(&summaries, kind, rule)
    }

    /// True when *any* pair is distinguishable — the paper's alarm
    /// condition for this event.
    pub fn leaks(&self) -> bool {
        self.pairs.iter().any(|p| p.distinguishable)
    }

    /// True when *every* pair is distinguishable (the paper's finding for
    /// `cache-misses` on both datasets).
    pub fn fully_distinguishable(&self) -> bool {
        !self.pairs.is_empty() && self.pairs.iter().all(|p| p.distinguishable)
    }

    /// Number of distinguishable pairs.
    pub fn leak_count(&self) -> usize {
        self.pairs.iter().filter(|p| p.distinguishable).count()
    }

    /// Looks up the result for a pair, in either order.
    pub fn pair(&self, a: usize, b: usize) -> Option<&PairResult> {
        let (i, j) = if a < b { (a, b) } else { (b, a) };
        self.pairs.iter().find(|p| p.i == i && p.j == j)
    }

    /// Re-evaluates the verdicts with Holm–Bonferroni correction at
    /// family-wise error rate `alpha`, returning the corrected matrix.
    ///
    /// The paper applies uncorrected per-pair tests; the corrected variant
    /// is provided because 6 simultaneous tests at α=0.05 have a ~26%
    /// family-wise false-alarm rate, which matters for an evaluator whose
    /// output is an alarm.
    pub fn holm_corrected(&self, alpha: f64) -> PairwiseLeakage {
        let m = self.pairs.len();
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| {
            self.pairs[a]
                .test
                .p
                .partial_cmp(&self.pairs[b].test.p)
                .expect("p-values are never NaN")
        });
        let mut corrected = self.clone();
        corrected.rule = DecisionRule::PValue { alpha };
        // Holm: step down; once one test fails, all larger p-values fail.
        let mut active = true;
        for (rank, &idx) in order.iter().enumerate() {
            let level = alpha / (m - rank) as f64;
            if active && self.pairs[idx].test.p < level {
                corrected.pairs[idx].distinguishable = true;
            } else {
                active = false;
                corrected.pairs[idx].distinguishable = false;
            }
        }
        corrected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shifted_samples() -> Vec<Vec<f64>> {
        // Three clearly separated categories and one overlapping pair.
        let base: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
        vec![
            base.iter().map(|x| x + 0.0).collect(),
            base.iter().map(|x| x + 0.1).collect(), // overlaps with category 0
            base.iter().map(|x| x + 50.0).collect(),
            base.iter().map(|x| x + 100.0).collect(),
        ]
    }

    #[test]
    fn pair_count_and_order() {
        let lk = PairwiseLeakage::assess_samples(
            &shifted_samples(),
            TTestKind::Welch,
            DecisionRule::default(),
        )
        .unwrap();
        assert_eq!(lk.pairs.len(), 6);
        assert_eq!((lk.pairs[0].i, lk.pairs[0].j), (0, 1));
        assert_eq!((lk.pairs[5].i, lk.pairs[5].j), (2, 3));
    }

    #[test]
    fn verdicts_follow_separation() {
        let lk = PairwiseLeakage::assess_samples(
            &shifted_samples(),
            TTestKind::Welch,
            DecisionRule::default(),
        )
        .unwrap();
        assert!(!lk.pair(0, 1).unwrap().distinguishable, "overlapping pair");
        assert!(lk.pair(0, 2).unwrap().distinguishable);
        assert!(lk.pair(2, 3).unwrap().distinguishable);
        assert!(lk.leaks());
        assert!(!lk.fully_distinguishable());
        assert_eq!(lk.leak_count(), 5);
    }

    #[test]
    fn pair_lookup_symmetric() {
        let lk = PairwiseLeakage::assess_samples(
            &shifted_samples(),
            TTestKind::Welch,
            DecisionRule::default(),
        )
        .unwrap();
        assert_eq!(
            lk.pair(3, 1).map(|p| (p.i, p.j)),
            Some((1, 3)),
            "lookup accepts either order"
        );
        assert!(lk.pair(0, 9).is_none());
    }

    #[test]
    fn tvla_threshold_rule() {
        let lk = PairwiseLeakage::assess_samples(
            &shifted_samples(),
            TTestKind::Welch,
            DecisionRule::TThreshold { threshold: 4.5 },
        )
        .unwrap();
        assert!(!lk.pair(0, 1).unwrap().distinguishable);
        assert!(lk.pair(0, 3).unwrap().distinguishable);
    }

    #[test]
    fn holm_is_no_more_permissive() {
        let lk = PairwiseLeakage::assess_samples(
            &shifted_samples(),
            TTestKind::Welch,
            DecisionRule::default(),
        )
        .unwrap();
        let corrected = lk.holm_corrected(0.05);
        for (orig, corr) in lk.pairs.iter().zip(corrected.pairs.iter()) {
            if corr.distinguishable {
                assert!(orig.distinguishable, "Holm flagged a pair raw alpha didn't");
            }
        }
    }

    #[test]
    fn identical_categories_do_not_leak() {
        let base: Vec<f64> = (0..40).map(|i| (i % 11) as f64).collect();
        let lk = PairwiseLeakage::assess_samples(
            &[base.clone(), base.clone(), base],
            TTestKind::Welch,
            DecisionRule::default(),
        )
        .unwrap();
        assert!(!lk.leaks());
        assert_eq!(lk.leak_count(), 0);
    }

    #[test]
    fn single_category_trivially_clean() {
        let lk = PairwiseLeakage::assess_samples(
            &[vec![1.0, 2.0, 3.0]],
            TTestKind::Welch,
            DecisionRule::default(),
        )
        .unwrap();
        assert!(lk.pairs.is_empty());
        assert!(!lk.leaks());
        assert!(!lk.fully_distinguishable());
    }

    #[test]
    fn constant_identical_categories_are_indistinguishable() {
        let lk = PairwiseLeakage::assess_samples(
            &[vec![5.0; 20], vec![5.0; 20]],
            TTestKind::Welch,
            DecisionRule::default(),
        )
        .unwrap();
        let p = lk.pair(0, 1).unwrap();
        assert!(!p.distinguishable);
        assert_eq!(p.test.t, 0.0);
        assert_eq!(p.test.p, 1.0);
        assert!(!lk.leaks());
    }

    #[test]
    fn constant_but_different_categories_leak() {
        let lk = PairwiseLeakage::assess_samples(
            &[vec![5.0; 20], vec![9.0; 20]],
            TTestKind::Welch,
            DecisionRule::default(),
        )
        .unwrap();
        assert!(lk.pair(0, 1).unwrap().distinguishable);
        assert!(lk.pair(0, 1).unwrap().test.t.is_infinite());
    }

    #[test]
    fn degenerate_category_errors() {
        let err = PairwiseLeakage::assess_samples(
            &[vec![1.0], vec![1.0, 2.0]],
            TTestKind::Welch,
            DecisionRule::default(),
        );
        assert!(matches!(err, Err(TTestError::TooFewSamples { .. })));
    }
}
