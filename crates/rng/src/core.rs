//! The generator traits: raw word output, seeding, and the high-level
//! sampling surface the workspace consumes.

use crate::distribution::Distribution;
use crate::uniform::{RangeSpec, SampleUniform};

/// A raw generator of uniformly distributed words.
pub trait RngCore {
    /// The next 32 uniform bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from 256 bits of key material.
    fn from_seed(seed: [u8; 32]) -> Self;

    /// Builds the generator from a `u64` seed, expanded to full key
    /// material with [`SplitMix64`](crate::SplitMix64).
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = crate::SplitMix64::new(seed);
        let mut key = [0u8; 32];
        for chunk in key.chunks_exact_mut(8) {
            chunk.copy_from_slice(&sm.next_value().to_le_bytes());
        }
        Self::from_seed(key)
    }
}

/// Values samplable uniformly from a generator's raw output — the
/// `rng.gen::<T>()` surface.
///
/// Floats are drawn from `[0, 1)`: `f64` from the top 53 bits of one
/// 64-bit word, `f32` from the top 24 bits of one 32-bit word, so every
/// representable multiple of 2⁻⁵³ (resp. 2⁻²⁴) is equally likely.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let lo = rng.next_u64() as u128;
        let hi = rng.next_u64() as u128;
        lo | (hi << 64)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Decide on the top bit: equally likely, and independent of the
        // low-bit structure of weaker generators.
        rng.next_u32() & (1 << 31) != 0
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// The high-level sampling interface, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution (uniform over
    /// the type's domain; `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: RangeSpec<T>,
    {
        let (low, high, inclusive) = range.into_parts();
        T::sample_uniform(self, low, high, inclusive)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Draws one value from `distribution`.
    fn sample<T, D: Distribution<T>>(&mut self, distribution: &D) -> T {
        distribution.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChaCha8Rng, SplitMix64};

    #[test]
    fn floats_are_half_open_unit() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        let mut b = ChaCha8Rng::seed_from_u64(3);
        let mut buf = [0u8; 8];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        assert_eq!(&buf[..4], &w0);
        assert_eq!(&buf[4..], &w1);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn bool_is_roughly_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..=5_500).contains(&trues), "got {trues}");
    }
}
