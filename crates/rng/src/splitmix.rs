//! SplitMix64: the seeding generator.
//!
//! Sebastiano Vigna's SplitMix64 (public domain) — a 64-bit
//! counter-plus-finaliser generator that passes BigCrush. It is used here
//! to expand a `u64` seed into ChaCha key material, and stands alone as a
//! cheap generator where stream-cipher quality is not needed.

use crate::core::{RngCore, SeedableRng};

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Advances the state and returns the next 64-bit output.
    pub fn next_value(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_value() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_value()
    }
}

impl SeedableRng for SplitMix64 {
    fn from_seed(seed: [u8; 32]) -> Self {
        SplitMix64::new(u64::from_le_bytes(
            seed[..8].try_into().expect("8-byte slice"),
        ))
    }

    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vector() {
        // Reference outputs for seed 1234567 from Vigna's C code.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_value(), 6457827717110365317);
        assert_eq!(sm.next_value(), 3203168211198807973);
        assert_eq!(sm.next_value(), 9817491932198370423);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut sm = SplitMix64::new(0);
        let a = sm.next_value();
        let b = sm.next_value();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_value(), b.next_value());
        }
    }
}
