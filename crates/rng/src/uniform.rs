//! Uniform sampling over ranges: the `rng.gen_range(a..b)` surface.

use crate::core::{Rng, RngCore};
use std::ops::{Range, RangeInclusive};

/// A range argument accepted by [`Rng::gen_range`]: `a..b` or `a..=b`.
pub trait RangeSpec<T> {
    /// Decomposes into `(low, high, inclusive)`.
    fn into_parts(self) -> (T, T, bool);
}

impl<T> RangeSpec<T> for Range<T> {
    fn into_parts(self) -> (T, T, bool) {
        (self.start, self.end, false)
    }
}

impl<T: Clone> RangeSpec<T> for RangeInclusive<T> {
    fn into_parts(self) -> (T, T, bool) {
        let (low, high) = self.into_inner();
        (low, high, true)
    }
}

/// Types uniformly samplable from a range.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// Uniform draw from `[0, span)` by widening multiply with rejection
/// (Lemire's method): unbiased, and accepts on the first draw with
/// overwhelming probability for the span sizes used here.
fn below_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Reject the low `2^64 mod span` fraction of each residue class.
    let zone = span.wrapping_neg() % span;
    loop {
        let wide = rng.next_u64() as u128 * span as u128;
        if (wide as u64) >= zone {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty as $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    if inclusive { low <= high } else { low < high },
                    "gen_range: empty range"
                );
                // Two's-complement subtraction gives the span for signed
                // and unsigned types alike.
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                if inclusive && span == u64::MAX {
                    // Full 64-bit domain: every word is already uniform.
                    return rng.next_u64() as $t;
                }
                let span = span + u64::from(inclusive);
                low.wrapping_add(below_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 as u8,
    u16 as u16,
    u32 as u32,
    u64 as u64,
    usize as usize,
    i8 as u8,
    i16 as u16,
    i32 as u32,
    i64 as u64,
    isize as usize,
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    if inclusive { low <= high } else { low < high },
                    "gen_range: empty or non-finite float range"
                );
                let span = high - low;
                assert!(span.is_finite(), "gen_range: span must be finite");
                loop {
                    // u ∈ [0, 1); the product can still round up to
                    // `high`, which a half-open range must reject.
                    let u: $t = Rng::gen(rng);
                    let value = low + u * span;
                    if inclusive || value < high {
                        return value;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use crate::{ChaCha8Rng, Rng, SeedableRng, SplitMix64};

    #[test]
    fn integer_ranges_respect_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(0usize..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn all_values_of_small_range_hit() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut seen = [false; 11];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..=10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn integer_range_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "bucket {i}: {frac}");
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = SplitMix64::new(4);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.5f32..=1.5);
            assert!((-1.5..=1.5).contains(&x));
            let y = rng.gen_range(0.0f64..2.0);
            assert!((0.0..2.0).contains(&y));
        }
    }

    #[test]
    fn float_range_mean_is_centred() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(-3.0f64..=3.0)).sum();
        assert!((sum / n as f64).abs() < 0.03);
    }

    #[test]
    fn signed_ranges_straddling_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1_000 {
            let v = rng.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&v));
            lo_seen |= v == -2;
            hi_seen |= v == 2;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let _ = rng.gen_range(5u32..5);
    }

    #[test]
    fn degenerate_inclusive_range_is_constant() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for _ in 0..100 {
            assert_eq!(rng.gen_range(9u64..=9), 9);
        }
    }
}
