//! # scnn-rng
//!
//! The workspace's only source of randomness: a small, fully in-tree,
//! deterministic PRNG stack with no external dependencies.
//!
//! Reproducibility is a headline claim of this artefact — every
//! experiment, dataset, weight initialisation and noise sample must be
//! re-derivable from a `u64` seed on any machine. Before this crate the
//! workspace pulled `rand` + `rand_chacha` from crates.io, which made the
//! *build itself* non-reproducible in offline environments. This crate
//! replaces that stack with:
//!
//! - [`SplitMix64`] — a tiny 64-bit mixing generator, used to expand a
//!   `u64` seed into a 256-bit ChaCha key (and usable standalone in
//!   tests);
//! - [`ChaCha8Rng`] — the ChaCha stream cipher reduced to 8 rounds, the
//!   same generator family (and the same name) the workspace used before,
//!   so every call site keeps its `ChaCha8Rng::seed_from_u64(seed)` shape;
//! - the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits mirroring the
//!   subset of the `rand` API the workspace consumes (`gen`, `gen_range`,
//!   `gen_bool`), plus [`SliceRandom`] for Fisher–Yates shuffles and
//!   [`Distribution`] for custom samplers (e.g. the Box–Muller Gaussian in
//!   `scnn-tensor`).
//!
//! ## Seed compatibility
//!
//! The *seed values* used throughout the workspace (experiment configs,
//! `EXPERIMENTS.md`, test fixtures) are unchanged: anywhere the code said
//! `ChaCha8Rng::seed_from_u64(42)` it still does, and all derived results
//! are bit-for-bit reproducible across platforms. The key expansion is
//! SplitMix64 (documented in `README.md`), so the raw keystream differs
//! from the retired `rand_chacha` implementation — no recorded artefact
//! depended on those bitstreams, because the dependency-based build could
//! not even resolve offline.
//!
//! # Examples
//!
//! ```
//! use scnn_rng::{ChaCha8Rng, Rng, SeedableRng, SliceRandom};
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(42);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.gen_range(0u64..10);
//! assert!(k < 10);
//! let mut v = vec![1, 2, 3, 4];
//! v.shuffle(&mut rng);
//! assert_eq!(ChaCha8Rng::seed_from_u64(42).gen::<f64>(), x);
//! ```

#![warn(missing_docs)]

mod chacha;
mod core;
mod distribution;
mod seq;
mod splitmix;
mod uniform;

pub use crate::core::{Rng, RngCore, SeedableRng};
pub use chacha::ChaCha8Rng;
pub use distribution::Distribution;
pub use seq::SliceRandom;
pub use splitmix::SplitMix64;
pub use uniform::{RangeSpec, SampleUniform};
