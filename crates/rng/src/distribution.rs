//! The distribution trait for custom samplers.

use crate::core::RngCore;

/// A distribution over `T`, samplable with any generator.
///
/// The workspace's Gaussian samplers (Box–Muller in `scnn-tensor`'s
/// initialisers) implement this.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChaCha8Rng, Rng, SeedableRng};

    struct Shifted(f64);

    impl Distribution<f64> for Shifted {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            self.0 + rng.gen::<f64>()
        }
    }

    #[test]
    fn custom_distribution_samples() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let d = Shifted(10.0);
        for _ in 0..100 {
            let v = d.sample(&mut rng);
            assert!((10.0..11.0).contains(&v));
        }
        // Also reachable through Rng::sample.
        let v = rng.sample(&Shifted(5.0));
        assert!((5.0..6.0).contains(&v));
    }
}
