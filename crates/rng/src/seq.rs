//! Sequence operations: shuffling and choosing with a generator.

use crate::core::{Rng, RngCore};

/// Randomised slice operations (Fisher–Yates shuffle, uniform choice).
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place, uniformly over permutations.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        // Fisher–Yates from the back: each prefix stays uniform.
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChaCha8Rng, SeedableRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "100! leaves identity negligible"
        );
    }

    #[test]
    fn shuffle_deterministic_per_seed() {
        let run = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut v: Vec<u32> = (0..50).collect();
            v.shuffle(&mut rng);
            v
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn shuffle_positions_are_uniformish() {
        // Where does element 0 land? Every slot should be visited.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..4_000 {
            let mut v: Vec<usize> = (0..8).collect();
            v.shuffle(&mut rng);
            counts[v.iter().position(|&x| x == 0).unwrap()] += 1;
        }
        for (slot, &c) in counts.iter().enumerate() {
            assert!(c > 300, "slot {slot} hit only {c} times");
        }
    }

    #[test]
    fn choose_covers_all_and_handles_empty() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn singleton_and_empty_shuffle_are_noops() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut one = [42];
        one.shuffle(&mut rng);
        assert_eq!(one, [42]);
        let mut none: [u8; 0] = [];
        none.shuffle(&mut rng);
    }
}
