//! ChaCha8: the workhorse generator.
//!
//! Bernstein's ChaCha stream cipher at 8 rounds — the reduced-round
//! variant the workspace has always used for experiment randomness
//! (cryptographic strength is not required; statistical quality and a
//! cheap, seekable, platform-independent stream are). The implementation
//! follows the RFC 8439 state layout with a 64-bit block counter and a
//! 64-bit stream number, emitting the keystream as little-endian `u32`
//! words.

use crate::core::{RngCore, SeedableRng};

/// `"expand 32-byte k"` as four little-endian words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

const WORDS_PER_BLOCK: usize = 16;

/// The ChaCha8 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    /// Block counter (state words 12–13).
    counter: u64,
    /// Stream number (state words 14–15): distinct streams under one key.
    stream: u64,
    /// The current keystream block.
    buf: [u32; WORDS_PER_BLOCK],
    /// Next unread word in `buf`; `WORDS_PER_BLOCK` means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Creates the generator from a 256-bit key; counter and stream start
    /// at zero.
    pub fn from_key(key: [u32; 8]) -> Self {
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buf: [0; WORDS_PER_BLOCK],
            index: WORDS_PER_BLOCK,
        }
    }

    /// Selects an independent keystream under the same key. Resets the
    /// position to the start of the new stream.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.index = WORDS_PER_BLOCK;
    }

    /// The current stream number.
    pub fn stream(&self) -> u64 {
        self.stream
    }

    /// Number of 32-bit words consumed so far.
    pub fn word_position(&self) -> u128 {
        let blocks = self.counter as u128;
        if self.index == WORDS_PER_BLOCK && blocks == 0 {
            0
        } else {
            // `counter` counts generated blocks; subtract what is still
            // buffered and unread.
            blocks * WORDS_PER_BLOCK as u128 - (WORDS_PER_BLOCK - self.index) as u128
        }
    }

    /// Generates the next keystream block into `buf`.
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            SIGMA[0],
            SIGMA[1],
            SIGMA[2],
            SIGMA[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let input = state;
        // 8 rounds = 4 double rounds (column + diagonal).
        for _ in 0..4 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buf.iter_mut().zip(state.iter().zip(input.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= WORDS_PER_BLOCK {
            self.refill();
        }
        let word = self.buf[self.index];
        self.index += 1;
        word
    }
}

impl SeedableRng for ChaCha8Rng {
    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng::from_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    /// ChaCha8 eSTREAM test vector: all-zero 256-bit key, all-zero IV.
    /// First keystream bytes from the reference implementation
    /// (ecrypt test vector set 1, vector 0).
    #[test]
    fn estream_zero_key_vector() {
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let mut out = [0u8; 16];
        rng.fill_bytes(&mut out);
        assert_eq!(
            out,
            [
                0x3e, 0x00, 0xef, 0x2f, 0x89, 0x5f, 0x40, 0xd6, 0x7f, 0x5b, 0xb8, 0xe8, 0x1f, 0x09,
                0xa5, 0xa1
            ]
        );
    }

    #[test]
    fn determinism_and_seed_sensitivity() {
        let stream = |seed: u64| -> Vec<u32> {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..64).map(|_| rng.next_u32()).collect()
        };
        assert_eq!(stream(42), stream(42));
        assert_ne!(stream(42), stream(43));
        assert_ne!(stream(0), stream(1));
    }

    #[test]
    fn blocks_are_contiguous() {
        // Reading across a block boundary must not repeat or skip words.
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        let mut b = ChaCha8Rng::seed_from_u64(9);
        for &w in &first {
            assert_eq!(b.next_u32(), w);
        }
        let dedup: std::collections::HashSet<u32> = first.iter().copied().collect();
        assert!(dedup.len() > 35, "40 words should be essentially distinct");
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        b.set_stream(1);
        assert_eq!(b.stream(), 1);
        let xa: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let xb: Vec<u32> = (0..16).map(|_| b.next_u32()).collect();
        assert_ne!(xa, xb);
    }

    #[test]
    fn word_position_tracks_consumption() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(rng.word_position(), 0);
        for i in 1..=35u128 {
            rng.next_u32();
            assert_eq!(rng.word_position(), i);
        }
    }

    #[test]
    fn mean_of_unit_floats_is_half() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn equidistribution_over_bytes() {
        // Coarse χ²-style check: each of 256 byte values appears.
        let mut rng = ChaCha8Rng::seed_from_u64(2024);
        let mut counts = [0u32; 256];
        let n = 256 * 200;
        for _ in 0..n / 4 {
            for b in rng.next_u32().to_le_bytes() {
                counts[b as usize] += 1;
            }
        }
        let expected = (n / 256) as f64;
        for (value, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expected * 0.6 && (c as f64) < expected * 1.4,
                "byte {value} count {c} vs expected {expected}"
            );
        }
    }
}
